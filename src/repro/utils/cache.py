"""In-memory, on-disk and layered caches for the labeling and serving paths.

The experiment harness labels corpora of datasets by training and testing all
candidate CE models — the expensive step the paper calls "dataset labeling".
Results are cached on disk keyed by a stable hash of the experiment
configuration, so every benchmark shares one labeling pass.

Serving nodes use the same building blocks for the embedding memo-cache:
:class:`LRUCache` bounds the in-memory working set, :class:`DiskCache` gives
crash-safe persistence, and :class:`PersistentLRUCache` layers the two so a
restarted node warm-starts from disk instead of re-running the GIN forward
for every dataset it has already served.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import re
import warnings
from collections import OrderedDict
from pathlib import Path

#: Sentinel distinguishing "missing" from a cached ``None``.
MISSING = object()

#: Keys that are already safe to use verbatim as file stems.
_SAFE_KEY = re.compile(r"^[A-Za-z0-9._-]{1,80}$")

#: Process-wide counter making concurrent temp-file names unique within one
#: process; the pid disambiguates across processes.
_TMP_COUNTER = itertools.count()


class LRUCache:
    """A bounded in-memory memo cache with least-recently-used eviction.

    Used as the serving-path embedding cache: repeat traffic for the same
    dataset fingerprint skips featurize + GIN forward entirely.  ``hits`` /
    ``misses`` counters make cache behavior observable in benchmarks.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        value = self._data.get(key, MISSING)
        if value is MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


def stable_hash(obj) -> str:
    """A deterministic hash of JSON-serializable configuration objects."""
    payload = json.dumps(obj, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class DiskCache:
    """Pickle-backed key/value store under a cache directory.

    Writes are atomic (unique temp file + ``os.replace``) so concurrent
    writers — including separate processes sharing one cache directory —
    never expose a torn pickle.  Reads treat corrupt or concurrently
    deleted entries as misses rather than raising mid-serve.

    A failed write (disk full, read-only directory, quota) never takes the
    serving path down — the cache is an accelerator, not a durability
    contract — but it is never silent either: ``put_failures`` counts every
    lost write and the first one emits a :class:`RuntimeWarning`, so
    a node quietly serving every query cold is visible in the tier report
    (``degraded storage``) instead of only in its latency percentiles.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Writes lost to OSError (disk full / read-only dir / quota).
        self.put_failures = 0
        self._warned_put_failure = False

    def _path(self, key: str) -> Path:
        # Keys may be arbitrary strings (fingerprints, config reprs, even
        # paths); anything that is not a plainly safe file stem is hashed so
        # it cannot escape the cache directory or collide with temp files.
        key = str(key)
        if not _SAFE_KEY.match(key):
            key = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str, default=None):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return default
        except MemoryError:
            # A transient MemoryError is deliberately re-raised — it is no
            # evidence of corruption and must not destroy the entry.
            raise
        except Exception:
            # A torn write from a crashed process, flipped bytes, or an
            # entry pickled by an incompatible code version.  Unpickling
            # corrupt data can raise nearly anything (UnpicklingError,
            # EOFError, UnicodeDecodeError, Attribute/Import/Key/Index/
            # ValueError from opcode garbage), so the net is deliberately
            # wide: drop the entry and report a miss rather than crash
            # mid-serve.
            self._discard(path)
            return default

    def put(self, key: str, value) -> None:
        path = self._path(key)
        # Unique per writer: two processes (or threads) writing the same key
        # must never share a temp file, or the loser of the race publishes a
        # torn pickle via the atomic replace below.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        try:
            try:
                handle = open(tmp, "wb")
            except FileNotFoundError:
                # The cache directory vanished (operator cleanup, tmpfs
                # wipe): recreate it rather than crash mid-serve.
                self.directory.mkdir(parents=True, exist_ok=True)
                handle = open(tmp, "wb")
            with handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as error:
            # Disk full / read-only directory / quota: the entry is lost
            # (reads will recompute) but serving continues.  Count it and
            # warn once so degraded storage is observable.
            self.put_failures += 1
            if not self._warned_put_failure:
                self._warned_put_failure = True
                warnings.warn(
                    f"DiskCache write to {self.directory} failed "
                    f"({error}); cache storage is degraded — entries will "
                    "be recomputed instead of persisted "
                    "(warning once; see DiskCache.put_failures)",
                    RuntimeWarning, stacklevel=2)
        finally:
            self._discard(tmp)

    def clear(self) -> None:
        for path in self.directory.glob("*.pkl"):
            self._discard(path)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def get_or_compute(self, key: str, compute):
        value = self.get(key, MISSING)
        if value is not MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value


class PersistentLRUCache:
    """An :class:`LRUCache` write-through layered over a :class:`DiskCache`.

    Serving nodes keep their embedding memo-cache here: the in-memory LRU
    bounds the hot working set while every entry is also persisted, so a node
    restarted from :func:`~repro.core.persistence.load_advisor` serves its
    first repeat query from disk instead of re-running the GIN forward.

    Entries are stamped with a *generation* — on the serving path, a content
    hash of the encoder weights — folded into every disk key, so an entry
    written under one generation can never be served under another even if
    a straggler process with an outdated advisor shares the cache directory.
    Whenever the generation changes (``fit`` / ``adapt_online`` retrained
    the encoder) the memory tier is dropped and old-generation disk entries
    are garbage-collected; reopening the cache with the generation the
    entries were written under keeps them valid.

    ``hits`` / ``misses`` mirror the plain LRU counters; ``disk_hits`` counts
    the subset of hits that had to be promoted from disk.
    """

    #: Disk key of the metadata record holding the current generation.
    _META_KEY = "cache-meta"

    def __init__(self, directory: str | Path, maxsize: int = 1024,
                 generation: str = "0"):
        self.memory = LRUCache(maxsize)
        self.disk = DiskCache(directory)
        self.disk_hits = 0
        self.generation = str(generation)
        meta = self.disk.get(self._META_KEY)
        if not isinstance(meta, dict) or meta.get("generation") != self.generation:
            # Old-generation files are unreachable anyway (the generation is
            # part of every key); clearing them is garbage collection.
            self.disk.clear()
            self.disk.put(self._META_KEY, {"generation": self.generation})

    def _disk_key(self, key) -> str:
        return f"{self.generation}:{key}"

    @property
    def hits(self) -> int:
        """Hits of the layered cache: served from memory *or* from disk."""
        return self.memory.hits + self.disk_hits

    @property
    def storage_failures(self) -> int:
        """Disk writes lost to OSError — nonzero means the persistence
        tier is degraded (entries live only in memory until restart)."""
        return self.disk.put_failures

    @property
    def misses(self) -> int:
        # Disk promotions first record an LRU miss; subtract them so the
        # combined counters describe the layered cache, not the LRU alone.
        return self.memory.misses - self.disk_hits

    def __len__(self) -> int:
        return len(self.memory)

    def __contains__(self, key) -> bool:
        return key in self.memory or self._disk_key(key) in self.disk

    def get(self, key, default=None):
        value = self.memory.get(key, MISSING)
        if value is not MISSING:
            return value
        value = self.disk.get(self._disk_key(key), MISSING)
        if value is MISSING:
            return default
        self.disk_hits += 1
        self.memory.put(key, value)
        return value

    def put(self, key, value) -> None:
        self.memory.put(key, value)
        self.disk.put(self._disk_key(key), value)

    def set_generation(self, generation: str) -> None:
        """Invalidate every entry unless ``generation`` matches the stamp."""
        generation = str(generation)
        if generation == self.generation:
            return
        self.generation = generation
        self.memory.clear()
        self.disk.clear()
        self.disk.put(self._META_KEY, {"generation": generation})

    def clear(self) -> None:
        """Drop all entries (memory and disk) within the current generation."""
        self.memory.clear()
        self.disk.clear()
        self.disk.put(self._META_KEY, {"generation": self.generation})
