"""A small content-addressed disk cache.

The experiment harness labels corpora of datasets by training and testing all
candidate CE models — the expensive step the paper calls "dataset labeling".
Results are cached on disk keyed by a stable hash of the experiment
configuration, so every benchmark shares one labeling pass.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from collections import OrderedDict
from pathlib import Path

#: Sentinel distinguishing "missing" from a cached ``None``.
MISSING = object()


class LRUCache:
    """A bounded in-memory memo cache with least-recently-used eviction.

    Used as the serving-path embedding cache: repeat traffic for the same
    dataset fingerprint skips featurize + GIN forward entirely.  ``hits`` /
    ``misses`` counters make cache behavior observable in benchmarks.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        value = self._data.get(key, MISSING)
        if value is MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


def stable_hash(obj) -> str:
    """A deterministic hash of JSON-serializable configuration objects."""
    payload = json.dumps(obj, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class DiskCache:
    """Pickle-backed key/value store under a cache directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str, default=None):
        path = self._path(key)
        if not path.exists():
            return default
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def put(self, key: str, value) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def get_or_compute(self, key: str, compute):
        if key in self:
            return self.get(key)
        value = compute()
        self.put(key, value)
        return value
