"""A small content-addressed disk cache.

The experiment harness labels corpora of datasets by training and testing all
candidate CE models — the expensive step the paper calls "dataset labeling".
Results are cached on disk keyed by a stable hash of the experiment
configuration, so every benchmark shares one labeling pass.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path


def stable_hash(obj) -> str:
    """A deterministic hash of JSON-serializable configuration objects."""
    payload = json.dumps(obj, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class DiskCache:
    """Pickle-backed key/value store under a cache directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str, default=None):
        path = self._path(key)
        if not path.exists():
            return default
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def put(self, key: str, value) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def get_or_compute(self, key: str, compute):
        if key in self:
            return self.get(key)
        value = compute()
        self.put(key, value)
        return value
