"""Input-validation helpers raising uniform, descriptive errors."""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
