"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``numpy.random.Generator``
explicitly; these helpers derive independent child generators from a seed so
that experiments are reproducible and components do not perturb each other's
streams.
"""

from __future__ import annotations

import numpy as np


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, passing through existing generators."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent child generator, namespaced by ``label``."""
    # Hash the label into 4 uint32 words for SeedSequence entropy.
    words = [np.uint32(abs(hash((label, i))) % (2 ** 32)) for i in range(4)]
    child_seed = rng.integers(0, 2 ** 32, size=4, dtype=np.uint64)
    entropy = [int(w) for w in child_seed] + [int(w) for w in words]
    return np.random.default_rng(np.random.SeedSequence(entropy))
