"""Shared fixtures: small deterministic datasets, workloads and contexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.base import TrainingContext
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import DatasetSpec, TableSpec
from repro.workload.generator import generate_workload


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="regenerate the golden-file expectations under tests/golden/ "
             "(run after an *intentional* ranking change, then review the "
             "diff; the determinism CI job regenerates and diffs them)")


@pytest.fixture
def regen_golden(request):
    """True when the run should rewrite the golden files instead of diffing."""
    return request.config.getoption("--regen-golden")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


SMALL_SPEC = DatasetSpec(
    name="small3",
    tables=(
        TableSpec(num_columns=3, num_rows=400, domain_size=20, skew=0.4,
                  max_correlation=0.5, interaction=0.3),
        TableSpec(num_columns=2, num_rows=300, domain_size=15, skew=0.2,
                  max_correlation=0.3),
        TableSpec(num_columns=2, num_rows=250, domain_size=12, skew=0.7,
                  max_correlation=0.6),
    ),
    join_correlation_min=0.4,
    join_correlation_max=0.9,
    fanout_skew=0.5,
    seed=7,
)

SINGLE_SPEC = DatasetSpec(
    name="single1",
    tables=(TableSpec(num_columns=4, num_rows=500, domain_size=25, skew=0.5,
                      max_correlation=0.7, interaction=0.4),),
    seed=9,
)


@pytest.fixture(scope="session")
def small_dataset():
    """A 3-table dataset with joins (session-scoped: generation is pure)."""
    return generate_dataset(SMALL_SPEC)


@pytest.fixture(scope="session")
def single_dataset():
    return generate_dataset(SINGLE_SPEC)


@pytest.fixture(scope="session")
def small_workload(small_dataset):
    return generate_workload(small_dataset, num_train=40, num_test=15, seed=3)


@pytest.fixture(scope="session")
def single_workload(single_dataset):
    return generate_workload(single_dataset, num_train=40, num_test=15, seed=4)


@pytest.fixture()
def small_ctx(small_dataset, small_workload):
    return TrainingContext.build(small_dataset, small_workload, seed=0,
                                 sample_size=500)


@pytest.fixture()
def single_ctx(single_dataset, single_workload):
    return TrainingContext.build(single_dataset, single_workload, seed=0,
                                 sample_size=500)
