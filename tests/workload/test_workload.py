"""Queries, workload generation and featurization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.counting import count_join
from repro.workload.encoding import QueryEncoder
from repro.workload.generator import generate_workload
from repro.workload.query import Predicate, Query


class TestQuery:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Predicate("t", "col0", 5, 4)

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError):
            Query(("a", "a"))

    def test_predicate_outside_from_rejected(self):
        with pytest.raises(ValueError):
            Query(("a",), (Predicate("b", "col0", 0, 1),))

    def test_template_sorted(self):
        q = Query(("b", "a"))
        assert q.template == ("a", "b")

    def test_num_joins(self):
        assert Query(("a",)).num_joins == 0
        assert Query(("a", "b", "c")).num_joins == 2

    def test_restrict(self):
        q = Query(("a", "b"), (Predicate("a", "col0", 0, 1),
                               Predicate("b", "col0", 2, 3)))
        sub = q.restrict(("a",))
        assert sub.tables == ("a",)
        assert len(sub.predicates) == 1

    def test_with_cardinality(self):
        q = Query(("a",)).with_cardinality(42)
        assert q.true_cardinality == 42

    def test_sql_rendering(self):
        q = Query(("a",), (Predicate("a", "col0", 1, 5),))
        sql = q.sql()
        assert "SELECT COUNT(*)" in sql
        assert "a.col0 BETWEEN 1 AND 5" in sql


class TestGenerator:
    def test_counts(self, small_workload):
        assert len(small_workload.train) == 40
        assert len(small_workload.test) == 15

    def test_true_cards_are_exact(self, small_dataset, small_workload):
        for q in small_workload.test[:8]:
            assert q.true_cardinality == count_join(
                small_dataset, q.tables, q.predicate_tuples())

    def test_templates_connected(self, small_dataset, small_workload):
        for template in small_workload.templates:
            assert small_dataset.is_connected_subset(template)

    def test_deterministic(self, small_dataset):
        a = generate_workload(small_dataset, 10, 5, seed=9)
        b = generate_workload(small_dataset, 10, 5, seed=9)
        assert [q.sql() for q in a.train] == [q.sql() for q in b.train]

    def test_predicates_on_data_columns_only(self, small_workload):
        for q in small_workload.train:
            for p in q.predicates:
                assert p.column.startswith("col")


class TestEncoding:
    def test_flat_dim_consistency(self, small_dataset, small_workload):
        enc = QueryEncoder(small_dataset)
        vec = enc.encode_flat(small_workload.train[0])
        assert vec.shape == (enc.flat_dim,)

    def test_flat_defaults_full_ranges(self, small_dataset):
        enc = QueryEncoder(small_dataset)
        q = Query((small_dataset.table_names[0],))
        vec = enc.encode_flat(q)
        # lo defaults to 0, hi to 1 for every column slot.
        np.testing.assert_allclose(vec[0:2 * len(enc.columns):2], 0.0)
        np.testing.assert_allclose(vec[1:2 * len(enc.columns):2], 1.0)

    def test_flat_encodes_predicate(self, small_dataset, small_workload):
        enc = QueryEncoder(small_dataset)
        q = small_workload.train[0]
        vec = enc.encode_flat(q)
        p = q.predicates[0]
        idx = enc.column_index[(p.table, p.column)]
        assert 0.0 <= vec[2 * idx] <= 1.0
        assert vec[2 * idx] <= vec[2 * idx + 1]

    def test_flat_batch_shape(self, small_dataset, small_workload):
        enc = QueryEncoder(small_dataset)
        batch = enc.encode_flat_batch(small_workload.train)
        assert batch.shape == (len(small_workload.train), enc.flat_dim)

    def test_set_masks(self, small_dataset, small_workload):
        enc = QueryEncoder(small_dataset)
        (t, tm), (j, jm), (p, pm) = enc.encode_sets_batch(small_workload.train)
        assert t.shape[0] == len(small_workload.train)
        # Mask counts match query structure.
        for i, q in enumerate(small_workload.train):
            assert tm[i].sum() == len(q.tables)
            assert pm[i].sum() == len(q.predicates)

    def test_table_onehot(self, small_dataset):
        enc = QueryEncoder(small_dataset)
        name = small_dataset.table_names[0]
        (t, tm), _, _ = enc.encode_sets_batch([Query((name,))])
        assert t[0, 0, enc.table_index[name]] == 1.0
