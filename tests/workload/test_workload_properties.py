"""Property-based tests of workload generation and query encodings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.counting import count_join
from repro.workload.encoding import QueryEncoder
from repro.workload.generator import generate_query, generate_workload
from repro.workload.query import Predicate, Query


@pytest.fixture(scope="module")
def encoder(small_dataset):
    return QueryEncoder(small_dataset)


class TestGeneratorInvariants:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_queries_are_well_formed(self, small_dataset, seed):
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        # Template is connected, predicates reference real columns within
        # the column's actual min/max.
        assert small_dataset.is_connected_subset(query.tables)
        for pred in query.predicates:
            values = small_dataset[pred.table][pred.column]
            assert pred.lo >= int(values.min())
            assert pred.hi <= int(values.max())
            assert pred.lo <= pred.hi

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_predicates_only_on_data_columns(self, small_dataset, seed):
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        for pred in query.predicates:
            data_cols = small_dataset[pred.table].data_columns()
            assert pred.column in data_cols

    def test_workload_cardinalities_are_exact(self, small_dataset):
        workload = generate_workload(small_dataset, num_train=10, num_test=5,
                                     seed=11)
        for query in workload.train + workload.test:
            recount = count_join(small_dataset, query.tables,
                                 query.predicate_tuples())
            assert query.true_cardinality == recount

    def test_workload_is_deterministic(self, small_dataset):
        a = generate_workload(small_dataset, num_train=8, num_test=4, seed=5)
        b = generate_workload(small_dataset, num_train=8, num_test=4, seed=5)
        assert [q.predicate_tuples() for q in a.train] == \
            [q.predicate_tuples() for q in b.train]

    def test_train_test_sizes(self, small_dataset):
        workload = generate_workload(small_dataset, num_train=12, num_test=7,
                                     seed=2)
        assert len(workload.train) == 12
        assert len(workload.test) == 7

    def test_templates_cover_train_and_test(self, small_dataset):
        workload = generate_workload(small_dataset, num_train=20, num_test=10,
                                     seed=3)
        templates = set(workload.templates)
        for query in workload.train + workload.test:
            assert query.template in templates


class TestPredicateSemantics:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_adding_predicates_never_increases_cardinality(self,
                                                           small_dataset,
                                                           seed):
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        if not query.predicates:
            return
        base = Query(query.tables, query.predicates[:-1])
        full_count = count_join(small_dataset, query.tables,
                                query.predicate_tuples())
        base_count = count_join(small_dataset, base.tables,
                                base.predicate_tuples())
        assert full_count <= base_count

    def test_sql_rendering_round_trip_facts(self, small_dataset):
        table = small_dataset.table_names[0]
        column = small_dataset[table].data_columns()[0]
        query = Query((table,), (Predicate(table, column, 3, 9),))
        sql = query.sql()
        assert f"FROM {table}" in sql
        assert f"{table}.{column} BETWEEN 3 AND 9" in sql


class TestEncodings:
    def test_flat_dim_matches_vector(self, small_dataset, encoder):
        workload = generate_workload(small_dataset, num_train=4, num_test=2,
                                     seed=1)
        vec = encoder.encode_flat(workload.train[0])
        assert vec.shape == (encoder.flat_dim,)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_flat_encoding_bounded(self, small_dataset, encoder, seed):
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        vec = encoder.encode_flat(query)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)

    def test_flat_encoding_distinguishes_ranges(self, small_dataset, encoder):
        table = small_dataset.table_names[0]
        column = small_dataset[table].data_columns()[0]
        values = small_dataset[table][column]
        lo, hi = int(values.min()), int(values.max())
        if hi - lo < 2:
            pytest.skip("degenerate column domain")
        narrow = Query((table,), (Predicate(table, column, lo, lo),))
        wide = Query((table,), (Predicate(table, column, lo, hi),))
        assert not np.allclose(encoder.encode_flat(narrow),
                               encoder.encode_flat(wide))

    def test_same_query_same_encoding(self, small_dataset, encoder):
        rng = np.random.default_rng(0)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        np.testing.assert_array_equal(encoder.encode_flat(query),
                                      encoder.encode_flat(query))
