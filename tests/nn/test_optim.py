"""Optimizers: convergence on convex problems, state handling, clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.autograd import Tensor


def quadratic_steps(optimizer_factory, steps: int = 200) -> float:
    x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
    optimizer = optimizer_factory([x])
    for _ in range(steps):
        loss = (x * x).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float((x.data ** 2).sum())


class TestSGD:
    def test_converges_on_quadratic(self):
        assert quadratic_steps(lambda p: nn.SGD(p, lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert quadratic_steps(lambda p: nn.SGD(p, lr=0.05, momentum=0.9)) < 1e-6

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.SGD([x], lr=0.1, weight_decay=1.0)
        loss = (x * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert abs(x.data[0]) < 1.0

    def test_skips_missing_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        nn.SGD([x], lr=0.1).step()  # no grad yet: must not crash
        np.testing.assert_allclose(x.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_steps(lambda p: nn.Adam(p, lr=0.1), steps=400) < 1e-6

    def test_bias_correction_first_step(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.Adam([x], lr=0.1)
        (x * 2.0).sum().backward()
        opt.step()
        # First Adam step magnitude ≈ lr regardless of gradient scale.
        np.testing.assert_allclose(x.data, [0.9], atol=1e-6)

    def test_only_requires_grad_params(self):
        frozen = Tensor(np.array([1.0]))
        live = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.Adam([frozen, live], lr=0.1)
        assert len(opt.params) == 1

    def test_weight_decay(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        opt = nn.Adam([x], lr=0.01, weight_decay=0.5)
        loss = (x * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert x.data[0] < 2.0


class TestClipGradNorm:
    def test_clips_large(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x.grad = np.array([3.0, 4.0, 0.0])
        norm = nn.clip_grad_norm([x], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(x.grad), 1.0, atol=1e-9)

    def test_leaves_small(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        x.grad = np.array([0.3, 0.4])
        nn.clip_grad_norm([x], max_norm=1.0)
        np.testing.assert_allclose(x.grad, [0.3, 0.4])

    def test_handles_none_grad(self):
        x = Tensor(np.zeros(2), requires_grad=True)
        assert nn.clip_grad_norm([x], max_norm=1.0) == 0.0


class TestTraining:
    def test_mlp_learns_xor_ish(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(np.float64).reshape(-1, 1)
        mlp = nn.MLP([2, 16, 1], rng, output_activation="sigmoid")
        opt = nn.Adam(mlp.parameters(), lr=0.02)
        first = None
        for _ in range(300):
            pred = mlp(nn.Tensor(x))
            loss = nn.mse_loss(pred, y)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5
