"""Loss functions: values and gradient flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.autograd import Tensor


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert nn.mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_zero_at_target(self):
        pred = Tensor(np.array([3.0, -1.0]))
        assert nn.mse_loss(pred, np.array([3.0, -1.0])).item() == 0.0

    def test_gradient(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        nn.mse_loss(pred, np.array([0.0, 0.0])).backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])


class TestMAE:
    def test_value(self):
        pred = Tensor(np.array([2.0, -2.0]))
        assert nn.mae_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.0)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = nn.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = nn.cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        nn.cross_entropy(logits, np.array([1])).backward()
        # The target logit's gradient is negative, others positive.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0


class TestNLL:
    def test_sums_over_batch(self):
        logits = Tensor(np.zeros((3, 2)))
        loss = nn.nll_from_logits(logits, np.array([0, 1, 0]))
        assert loss.item() == pytest.approx(3 * np.log(2.0))

    def test_msle_is_mse_alias_in_log_space(self):
        pred = Tensor(np.array([1.0, 2.0]))
        a = nn.msle_loss(pred, np.array([0.0, 0.0])).item()
        b = nn.mse_loss(pred, np.array([0.0, 0.0])).item()
        assert a == b
