"""Module mechanics: parameter tracking, masking, MLP behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def gen():
    return np.random.default_rng(0)


class TestLinear:
    def test_forward_shape(self, gen):
        layer = nn.Linear(4, 3, gen)
        out = layer(nn.Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_batched_3d_input(self, gen):
        layer = nn.Linear(4, 3, gen)
        out = layer(nn.Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self, gen):
        layer = nn.Linear(4, 3, gen, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_tracked(self, gen):
        layer = nn.Linear(4, 3, gen)
        assert len(layer.parameters()) == 2


class TestMaskedLinear:
    def test_mask_blocks_connection(self, gen):
        mask = np.zeros((3, 2))
        mask[0, :] = 1.0  # only input 0 connects
        layer = nn.MaskedLinear(3, 2, gen, mask)
        x1 = np.array([[1.0, 0.0, 0.0]])
        x2 = np.array([[1.0, 9.0, -7.0]])
        out1 = layer(nn.Tensor(x1)).numpy()
        out2 = layer(nn.Tensor(x2)).numpy()
        np.testing.assert_allclose(out1, out2)

    def test_mask_shape_validation(self, gen):
        with pytest.raises(ValueError):
            nn.MaskedLinear(3, 2, gen, np.ones((2, 3)))

    def test_masked_gradient_stays_masked(self, gen):
        mask = np.zeros((3, 2))
        mask[0, :] = 1.0
        layer = nn.MaskedLinear(3, 2, gen, mask)
        out = layer(nn.Tensor(np.ones((4, 3))))
        out.sum().backward()
        # Gradient through a masked weight is zero.
        assert np.all(layer.weight.grad[1:, :] == 0)


class TestModule:
    def test_nested_parameters(self, gen):
        mlp = nn.MLP([4, 8, 2], gen)
        assert len(mlp.parameters()) == 4  # 2 layers × (W, b)

    def test_train_eval_propagates(self, gen):
        seq = nn.Sequential(nn.Linear(2, 2, gen), nn.ReLU())
        seq.eval()
        assert not seq.steps[0].training
        seq.train()
        assert seq.steps[0].training

    def test_state_dict_roundtrip(self, gen):
        mlp = nn.MLP([3, 5, 2], gen)
        state = mlp.state_dict()
        mlp2 = nn.MLP([3, 5, 2], np.random.default_rng(99))
        mlp2.load_state_dict(state)
        x = np.random.default_rng(1).normal(size=(4, 3))
        np.testing.assert_allclose(mlp(nn.Tensor(x)).numpy(),
                                   mlp2(nn.Tensor(x)).numpy())

    def test_num_parameters(self, gen):
        mlp = nn.MLP([3, 5, 2], gen)
        assert mlp.num_parameters() == 3 * 5 + 5 + 5 * 2 + 2

    def test_zero_grad_clears(self, gen):
        mlp = nn.MLP([3, 2], gen)
        out = mlp(nn.Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert mlp.layers[0].weight.grad is not None
        mlp.zero_grad()
        assert mlp.layers[0].weight.grad is None


class TestMLP:
    def test_needs_two_sizes(self, gen):
        with pytest.raises(ValueError):
            nn.MLP([3], gen)

    def test_output_activation_sigmoid_bounds(self, gen):
        mlp = nn.MLP([3, 4, 1], gen, output_activation="sigmoid")
        out = mlp(nn.Tensor(np.random.default_rng(0).normal(size=(10, 3))))
        assert np.all(out.numpy() > 0) and np.all(out.numpy() < 1)

    def test_unknown_activation(self, gen):
        mlp = nn.MLP([3, 4, 2], gen, activation="bogus")
        with pytest.raises(ValueError):
            mlp(nn.Tensor(np.ones((1, 3))))

    def test_tanh_activation(self, gen):
        mlp = nn.MLP([3, 4, 2], gen, activation="tanh")
        assert mlp(nn.Tensor(np.ones((2, 3)))).shape == (2, 2)

    def test_sequential_matches_manual(self, gen):
        layer = nn.Linear(3, 2, gen)
        seq = nn.Sequential(layer, nn.ReLU())
        x = nn.Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        np.testing.assert_allclose(seq(x).numpy(), layer(x).relu().numpy())
