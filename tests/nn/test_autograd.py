"""Gradient correctness of the autodiff engine, checked against finite
differences, plus graph-mechanics tests (accumulation, no_grad, freeing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.autograd import Tensor, _unbroadcast


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    g = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        g[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-5):
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor)
    out.backward()
    expected = numeric_grad(lambda v: float(build(Tensor(v)).numpy()), x.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def test_add(self, rng):
        check_gradient(lambda t: (t + 3.0).sum(), rng.normal(size=(3, 4)))

    def test_sub(self, rng):
        check_gradient(lambda t: (5.0 - t).sum(), rng.normal(size=(3, 4)))

    def test_mul(self, rng):
        other = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t * other).sum(), rng.normal(size=(3, 4)))

    def test_div(self, rng):
        denom = rng.normal(size=(3, 4)) + 5.0
        check_gradient(lambda t: (t / denom).sum(), rng.normal(size=(3, 4)))

    def test_rdiv(self, rng):
        check_gradient(lambda t: (2.0 / t).sum(), rng.uniform(1.0, 2.0, (3,)))

    def test_pow(self, rng):
        check_gradient(lambda t: (t ** 3).sum(), rng.normal(size=(4,)))

    def test_neg(self, rng):
        check_gradient(lambda t: (-t).sum(), rng.normal(size=(4,)))

    def test_exp(self, rng):
        check_gradient(lambda t: t.exp().sum(), rng.normal(size=(3,)))

    def test_log(self, rng):
        check_gradient(lambda t: t.log().sum(), rng.uniform(0.5, 2.0, (3,)))

    def test_sqrt(self, rng):
        check_gradient(lambda t: t.sqrt().sum(), rng.uniform(0.5, 2.0, (3,)))

    def test_relu(self, rng):
        x = rng.normal(size=(10,))
        x[np.abs(x) < 0.05] = 0.5  # avoid the kink
        check_gradient(lambda t: t.relu().sum(), x)

    def test_leaky_relu(self, rng):
        x = rng.normal(size=(10,))
        x[np.abs(x) < 0.05] = 0.5
        check_gradient(lambda t: t.leaky_relu(0.1).sum(), x)

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.normal(size=(5,)))

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.normal(size=(5,)))

    def test_abs(self, rng):
        x = rng.normal(size=(6,))
        x[np.abs(x) < 0.05] = 0.3
        check_gradient(lambda t: t.abs().sum(), x)

    def test_clip(self, rng):
        x = rng.normal(size=(8,)) * 2
        x[np.abs(np.abs(x) - 1.0) < 0.05] = 0.0
        check_gradient(lambda t: t.clip(-1.0, 1.0).sum(), x)


class TestReductionsAndShaping:
    def test_sum_axis(self, rng):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(),
                       rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * 2.0).sum(),
                       rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(),
                       rng.normal(size=(3, 4)))

    def test_max(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: t.max(axis=1).sum(), x)

    def test_reshape(self, rng):
        check_gradient(lambda t: (t.reshape(2, 6) ** 2).sum(),
                       rng.normal(size=(3, 4)))

    def test_transpose(self, rng):
        other = rng.normal(size=(4, 3))
        check_gradient(lambda t: (t.T * other).sum(), rng.normal(size=(3, 4)))

    def test_getitem(self, rng):
        check_gradient(lambda t: (t[1:, :2] ** 2).sum(), rng.normal(size=(3, 4)))

    def test_getitem_fancy(self, rng):
        rows = np.array([0, 2, 2])
        check_gradient(lambda t: t[rows].sum(), rng.normal(size=(3, 4)))

    def test_logsumexp(self, rng):
        check_gradient(lambda t: t.logsumexp(axis=1).sum(),
                       rng.normal(size=(3, 4)))

    def test_logsumexp_all(self, rng):
        check_gradient(lambda t: t.logsumexp(), rng.normal(size=(3, 4)))

    def test_softmax(self, rng):
        w = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.softmax(axis=1) * w).sum(),
                       rng.normal(size=(3, 4)))

    def test_log_softmax(self, rng):
        w = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.log_softmax(axis=1) * w).sum(),
                       rng.normal(size=(3, 4)))


class TestMatmul:
    def test_2d_2d_left(self, rng):
        b = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ b).sum(), rng.normal(size=(3, 4)))

    def test_2d_2d_right(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(a) @ t).sum(), rng.normal(size=(4, 2)))

    def test_batched_3d_2d(self, rng):
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ w).sum(), rng.normal(size=(2, 3, 4)))

    def test_batched_3d_2d_weight_grad(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), rng.normal(size=(4, 2)))

    def test_batched_3d_3d(self, rng):
        b = rng.normal(size=(2, 4, 3))
        check_gradient(lambda t: (t @ b).sum(), rng.normal(size=(2, 3, 4)))

    def test_vec_mat(self, rng):
        m = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t @ m).sum(), rng.normal(size=(3,)))

    def test_mat_vec(self, rng):
        v = rng.normal(size=(4,))
        check_gradient(lambda t: (t @ v).sum(), rng.normal(size=(3, 4)))


class TestBroadcasting:
    def test_add_broadcast_bias(self, rng):
        x = rng.normal(size=(5, 3))
        check_gradient(lambda t: ((Tensor(x) + t) ** 2).sum(),
                       rng.normal(size=(3,)))

    def test_mul_broadcast_row(self, rng):
        x = rng.normal(size=(5, 3))
        check_gradient(lambda t: (Tensor(x) * t).sum(),
                       rng.normal(size=(1, 3)))

    def test_unbroadcast_shapes(self):
        grad = np.ones((5, 3))
        assert _unbroadcast(grad, (3,)).shape == (3,)
        assert _unbroadcast(grad, (1, 3)).shape == (1, 3)
        assert _unbroadcast(grad, (5, 3)).shape == (5, 3)
        np.testing.assert_allclose(_unbroadcast(grad, (3,)), [5, 5, 5])


class TestHelpers:
    def test_concatenate_gradient(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        out = nn.concatenate([ta, tb], axis=1)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(ta.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(tb.grad, np.full((2, 2), 2.0))

    def test_stack_gradient(self, rng):
        tensors = [Tensor(rng.normal(size=(3,)), requires_grad=True)
                   for _ in range(4)]
        out = nn.stack(tensors, axis=0)
        out.sum().backward()
        for t in tensors:
            np.testing.assert_allclose(t.grad, np.ones(3))

    def test_where_gradient(self, rng):
        cond = np.array([True, False, True])
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        nn.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0, 1])
        np.testing.assert_allclose(b.grad, [0, 1, 0])


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_twice_accumulates(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_nesting_restores(self):
        from repro.nn.autograd import is_grad_enabled
        assert is_grad_enabled()
        with nn.no_grad():
            assert not is_grad_enabled()
            with nn.no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_raises(self):
        x = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert not x.detach().requires_grad

    def test_dtype_handling(self):
        # float32 is a first-class precision tier and must be preserved;
        # non-float inputs still promote to the float64 default.
        assert Tensor(np.ones(2, dtype=np.float32)).data.dtype == np.float32
        assert Tensor(np.ones(2, dtype=np.int64)).data.dtype == np.float64
        assert Tensor(np.ones(2, dtype=np.float16)).data.dtype == np.float64

    def test_float32_graph_stays_float32(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = ((x * 2.0 + 1.0).relu().sum() / 3.0) - 0.5
        assert out.data.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float32

    def test_scalar_fast_paths_match_tensor_ops(self):
        x_data = np.array([1.5, -2.0, 3.0])
        for op in (lambda t, s: t + s, lambda t, s: t - s,
                   lambda t, s: s - t, lambda t, s: t * s,
                   lambda t, s: t / s, lambda t, s: s / t):
            for scalar in (3.0, -0.5, 2):
                fast = op(Tensor(x_data.copy()), scalar)
                slow = op(Tensor(x_data.copy()), Tensor(np.float64(scalar)))
                np.testing.assert_array_equal(fast.numpy(), slow.numpy())

    def test_scalar_division_by_zero_propagates_inf(self):
        # The scalar fast path must behave like numpy division, not raise.
        with np.errstate(divide="ignore"):
            out = Tensor(np.array([1.0, -1.0])) / 0
        np.testing.assert_array_equal(out.numpy(), [np.inf, -np.inf])


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-3.0, 3.0), min_size=2, max_size=8))
def test_logsumexp_matches_numpy(values):
    x = np.array(values)
    t = Tensor(x)
    expected = np.log(np.sum(np.exp(x - x.max()))) + x.max()
    np.testing.assert_allclose(float(t.logsumexp().numpy()), expected, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-5.0, 5.0), min_size=2, max_size=8))
def test_softmax_is_distribution(values):
    t = Tensor(np.array([values]))
    probs = t.softmax(axis=1).numpy()
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(), 1.0, atol=1e-9)
