"""Corpus construction, caching, and a smoke pass of the cheap drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.spec import random_spec
from repro.experiments.common import ExperimentSuite, format_table, summarize
from repro.experiments.corpus import (CorpusConfig, build_corpus, env_int,
                                      label_one)
from repro.testbed.runner import TestbedConfig
from repro.utils.cache import DiskCache, stable_hash

TINY_TESTBED = TestbedConfig(num_train_queries=25, num_test_queries=8,
                             sample_size=200, mscn_epochs=5, lwnn_epochs=5,
                             made_epochs=1, made_hidden=12, made_samples=8)


class TestUtils:
    def test_stable_hash_deterministic(self):
        assert stable_hash({"a": 1}) == stable_hash({"a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_disk_cache_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", {"x": np.arange(3)})
        out = cache.get("k")
        np.testing.assert_array_equal(out["x"], np.arange(3))
        assert "k" in cache
        assert cache.get("missing", 42) == 42

    def test_get_or_compute_runs_once(self, tmp_path):
        cache = DiskCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cache.get_or_compute("k", compute) == 7
        assert cache.get_or_compute("k", compute) == 7
        assert len(calls) == 1

    def test_env_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "13")
        assert env_int("REPRO_X", 5) == 13
        assert env_int("REPRO_MISSING", 5) == 5

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in text and "2.5" in text and "x" in text

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert summarize([])["mean"] == 0.0

    def test_improvements_zero_baseline_is_nan(self):
        from repro.experiments.table5_e2e import (_format_improvement,
                                                  improvements)
        totals = {"single-table": {"PostgreSQL": (0.0, 0.0),
                                   "TrueCard": (1.0, 0.0)},
                  "multi-table": {"PostgreSQL": (2.0, 2.0),
                                  "TrueCard": (1.0, 1.0)}}
        out = improvements(totals)
        assert np.isnan(out["single-table"]["TrueCard"])
        assert np.isnan(out["single-table"]["PostgreSQL"])
        assert out["multi-table"]["TrueCard"] == pytest.approx(0.5)
        assert _format_improvement(out["single-table"]["TrueCard"]) == "n/a"
        assert _format_improvement(out["multi-table"]["TrueCard"]) == "+50.0%"


class TestCorpus:
    def test_label_one(self):
        entry = label_one(random_spec(1), TINY_TESTBED)
        assert entry.graph.num_tables == entry.dataset().num_tables
        assert len(entry.label.model_names) == 7

    def test_build_corpus_cached(self, tmp_path):
        config = CorpusConfig(num_datasets=2, testbed=TINY_TESTBED)
        first = build_corpus(config, cache_dir=tmp_path)
        second = build_corpus(config, cache_dir=tmp_path)
        assert len(first) == 2
        np.testing.assert_array_equal(first[0].label.qerror_means,
                                      second[0].label.qerror_means)

    def test_cache_key_sensitive_to_config(self):
        a = CorpusConfig(num_datasets=2, testbed=TINY_TESTBED)
        b = CorpusConfig(num_datasets=3, testbed=TINY_TESTBED)
        assert a.cache_key() != b.cache_key()

    def test_entry_dataset_regenerates(self):
        entry = label_one(random_spec(2), TINY_TESTBED)
        d1 = entry.dataset()
        d2 = entry.dataset()
        first = d1[d1.table_names[0]].data_columns()[0]
        np.testing.assert_array_equal(d1[d1.table_names[0]][first],
                                      d2[d2.table_names[0]][first])


@pytest.fixture(scope="module")
def tiny_suite(tmp_path_factory):
    suite = ExperimentSuite(num_train=8, num_test=4,
                            cache_dir=str(tmp_path_factory.mktemp("cache")))
    suite.testbed = TINY_TESTBED
    return suite


@pytest.mark.slow
class TestSuite:
    def test_train_corpus_size(self, tiny_suite):
        assert len(tiny_suite.train_corpus()) == 8

    def test_autoce_fits_and_recommends(self, tiny_suite):
        advisor = tiny_suite.autoce()
        graphs, labels = tiny_suite.test_graphs_and_labels()
        rec = advisor.recommend(graphs[0], 0.9)
        assert rec.model in labels[0].model_names

    def test_test_corpus_has_baselines(self, tiny_suite):
        entries = tiny_suite.test_corpus()
        assert entries[0].label.model_names[-2:] == ("Postgres", "Ensemble")

    def test_baseline_selectors(self, tiny_suite):
        graphs, labels = tiny_suite.test_graphs_and_labels()
        for name in ("MLP", "Rule", "Knn", "Without-DML"):
            selector = tiny_suite.baseline(name)
            assert selector.recommend(graphs[0], 0.9) in labels[0].model_names

    def test_memoization(self, tiny_suite):
        assert tiny_suite.autoce() is tiny_suite.autoce()


@pytest.mark.slow
class TestDriverSmoke:
    def test_table4_knn_k(self, tiny_suite):
        from repro.experiments import table4_knn_k
        result = table4_knn_k.run(tiny_suite)
        assert set(result.d_error) == {1.0, 0.9, 0.7, 0.5}
        assert "k=2" in result.text

    def test_fig7_loss_ablation(self, tiny_suite):
        from repro.experiments import fig7_loss_ablation
        result = fig7_loss_ablation.run(tiny_suite)
        assert set(result.weighted) == {0.9, 0.7, 0.5}
        assert "Figure 7" in result.text

    def test_fig9_ce_baselines(self, tiny_suite):
        from repro.experiments import fig9_ce_baselines
        result = fig9_ce_baselines.run(tiny_suite, weights=(1.0, 0.5))
        assert "AutoCE" in result.mean_d_error
        assert "Postgres" in result.mean_d_error

    def test_table1(self, tiny_suite):
        from repro.experiments import table1_datasets
        result = table1_datasets.run(tiny_suite, num_synthetic_probe=2)
        assert "imdb_light" in result.text
