"""Table storage: validation, selection, column classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.table import PK_COLUMN, Table


def make_table():
    return Table("t", {
        PK_COLUMN: np.arange(5),
        "fk_parent": np.array([0, 1, 1, 2, 0]),
        "col0": np.array([3, 1, 4, 1, 5]),
        "col1": np.array([9, 2, 6, 5, 3]),
    })


class TestConstruction:
    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {})

    def test_values_cast_to_int64(self):
        t = Table("t", {"a": np.array([1.0, 2.0])})
        assert t["a"].dtype == np.int64

    def test_num_rows(self):
        assert make_table().num_rows == 5


class TestColumnClassification:
    def test_data_columns(self):
        assert make_table().data_columns() == ["col0", "col1"]

    def test_fk_columns(self):
        assert make_table().fk_columns() == ["fk_parent"]

    def test_has_pk(self):
        assert make_table().has_pk
        assert not Table("x", {"col0": np.arange(3)}).has_pk

    def test_contains(self):
        t = make_table()
        assert "col0" in t and "nope" not in t


class TestSelect:
    def test_single_predicate(self):
        t = make_table()
        mask = t.select([("col0", 1, 3)])
        np.testing.assert_array_equal(mask, [True, True, False, True, False])

    def test_conjunction(self):
        t = make_table()
        mask = t.select([("col0", 1, 4), ("col1", 5, 9)])
        np.testing.assert_array_equal(mask, [True, False, True, True, False])

    def test_empty_predicates_all_true(self):
        assert make_table().select([]).all()

    def test_empty_range(self):
        mask = make_table().select([("col0", 100, 200)])
        assert not mask.any()


class TestMisc:
    def test_domain_size(self):
        assert make_table().domain_size("col0") == 4

    def test_take(self):
        t = make_table().take(np.array([0, 2]))
        assert t.num_rows == 2
        np.testing.assert_array_equal(t["col0"], [3, 4])

    def test_repr(self):
        assert "t" in repr(make_table())
