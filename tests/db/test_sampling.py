"""Join materialization, sample cache and integrity-preserving subsampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.counting import join_size
from repro.db.sampling import JoinSampleCache, materialize_join, subsample_dataset
from repro.db.table import PK_COLUMN


class TestMaterializeJoin:
    def test_sizes_match_exact_count(self, small_dataset):
        for template in small_dataset.connected_subsets():
            rows = materialize_join(small_dataset, template)
            size = len(next(iter(rows.values())))
            assert size == join_size(small_dataset, template)

    def test_join_rows_satisfy_fk_equalities(self, small_dataset):
        template = max(small_dataset.connected_subsets(), key=len)
        rows = materialize_join(small_dataset, template)
        for fk in small_dataset.subset_edges(template):
            fk_vals = small_dataset[fk.child][fk.fk_column][rows[fk.child]]
            pk_vals = small_dataset[fk.parent][PK_COLUMN][rows[fk.parent]]
            np.testing.assert_array_equal(fk_vals, pk_vals)

    def test_max_rows_cap(self, small_dataset):
        template = max(small_dataset.connected_subsets(), key=len)
        rows = materialize_join(small_dataset, template, max_rows=50)
        assert len(next(iter(rows.values()))) <= 50

    def test_disconnected_rejected(self, small_dataset):
        names = sorted(small_dataset.table_names)
        # Find a genuinely disconnected pair if one exists; otherwise skip.
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                pair = (names[i], names[j])
                if not small_dataset.is_connected_subset(pair):
                    with pytest.raises(ValueError):
                        materialize_join(small_dataset, pair)
                    return
        pytest.skip("all pairs connected in this schema")


class TestJoinSampleCache:
    def test_sample_column_names_qualified(self, small_dataset):
        cache = JoinSampleCache(small_dataset)
        template = small_dataset.connected_subsets()[0]
        columns, size = cache.sample(template, 100)
        for name in columns:
            table, column = name.split(".")
            assert table in template
            assert column.startswith("col")

    def test_sample_size_bounded(self, small_dataset):
        cache = JoinSampleCache(small_dataset)
        template = max(small_dataset.connected_subsets(), key=len)
        columns, size = cache.sample(template, 64)
        lengths = {len(v) for v in columns.values()}
        assert lengths == {min(64, size)}

    def test_template_size_cached_and_exact(self, small_dataset):
        cache = JoinSampleCache(small_dataset)
        template = small_dataset.connected_subsets()[0]
        assert cache.template_size(template) == join_size(small_dataset, template)

    def test_clear(self, small_dataset):
        cache = JoinSampleCache(small_dataset)
        cache.sample(small_dataset.connected_subsets()[0], 10)
        cache.clear()
        assert not cache._joins


class TestSubsampleDataset:
    def test_fraction_bounds(self, small_dataset):
        with pytest.raises(ValueError):
            subsample_dataset(small_dataset, 0.0)
        with pytest.raises(ValueError):
            subsample_dataset(small_dataset, 1.5)

    def test_integrity_preserved(self, small_dataset):
        sample = subsample_dataset(small_dataset, 0.4, seed=1)
        # Constructing the Dataset revalidates FKs; also check PKs renumbered.
        for table in sample.tables.values():
            if table.has_pk:
                np.testing.assert_array_equal(
                    table[PK_COLUMN], np.arange(table.num_rows))

    def test_rows_reduced(self, small_dataset):
        sample = subsample_dataset(small_dataset, 0.4, seed=1)
        assert sample.total_rows < small_dataset.total_rows

    def test_full_fraction_keeps_all_parents(self, small_dataset):
        sample = subsample_dataset(small_dataset, 1.0, seed=1)
        parents = {fk.parent for fk in small_dataset.foreign_keys}
        for parent in parents:
            assert sample[parent].num_rows == small_dataset[parent].num_rows

    def test_same_schema(self, small_dataset):
        sample = subsample_dataset(small_dataset, 0.5)
        assert set(sample.table_names) == set(small_dataset.table_names)
        assert len(sample.foreign_keys) == len(small_dataset.foreign_keys)
