"""Dataset schemas: FK validation, join-graph utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.schema import Dataset, ForeignKey
from repro.db.table import PK_COLUMN, Table


def chain_dataset():
    """a <- b <- c (b references a, c references b)."""
    a = Table("a", {PK_COLUMN: np.arange(4), "col0": np.arange(4)})
    b = Table("b", {PK_COLUMN: np.arange(6), "fk_a": np.array([0, 1, 1, 2, 3, 0]),
                    "col0": np.arange(6)})
    c = Table("c", {"fk_b": np.array([0, 2, 5, 5]), "col0": np.arange(4)})
    return Dataset("chain", [a, b, c],
                   [ForeignKey("b", "fk_a", "a"), ForeignKey("c", "fk_b", "b")])


class TestValidation:
    def test_fk_column_prefix_enforced(self):
        with pytest.raises(ValueError):
            ForeignKey("b", "a_ref", "a")

    def test_unknown_table_rejected(self):
        a = Table("a", {PK_COLUMN: np.arange(3), "col0": np.arange(3)})
        with pytest.raises(ValueError, match="unknown table"):
            Dataset("d", [a], [ForeignKey("b", "fk_a", "a")])

    def test_fk_out_of_range_rejected(self):
        a = Table("a", {PK_COLUMN: np.arange(2), "col0": np.arange(2)})
        b = Table("b", {"fk_a": np.array([0, 5]), "col0": np.arange(2)})
        with pytest.raises(ValueError, match="outside"):
            Dataset("d", [a, b], [ForeignKey("b", "fk_a", "a")])

    def test_missing_pk_rejected(self):
        a = Table("a", {"col0": np.arange(2)})
        b = Table("b", {"fk_a": np.array([0, 1]), "col0": np.arange(2)})
        with pytest.raises(ValueError, match="primary key"):
            Dataset("d", [a, b], [ForeignKey("b", "fk_a", "a")])

    def test_duplicate_table_names_rejected(self):
        a = Table("a", {"col0": np.arange(2)})
        with pytest.raises(ValueError, match="duplicate"):
            Dataset("d", [a, a], [])

    def test_cycle_rejected(self):
        a = Table("a", {PK_COLUMN: np.arange(2), "fk_b": np.array([0, 1]),
                        "col0": np.arange(2)})
        b = Table("b", {PK_COLUMN: np.arange(2), "fk_a": np.array([0, 1]),
                        "col0": np.arange(2)})
        with pytest.raises(ValueError, match="acyclic"):
            Dataset("d", [a, b],
                    [ForeignKey("b", "fk_a", "a"), ForeignKey("a", "fk_b", "b")])


class TestGraphUtilities:
    def test_connected_subsets_chain(self):
        ds = chain_dataset()
        subsets = ds.connected_subsets()
        assert ("a",) in subsets
        assert ("a", "b") in subsets
        assert ("b", "c") in subsets
        assert ("a", "b", "c") in subsets
        assert ("a", "c") not in subsets  # not adjacent

    def test_connected_subsets_max_size(self):
        ds = chain_dataset()
        subsets = ds.connected_subsets(max_size=2)
        assert all(len(s) <= 2 for s in subsets)

    def test_is_connected_subset(self):
        ds = chain_dataset()
        assert ds.is_connected_subset(("a", "b"))
        assert not ds.is_connected_subset(("a", "c"))
        assert ds.is_connected_subset(("b",))

    def test_fk_between(self):
        ds = chain_dataset()
        fk = ds.fk_between("a", "b")
        assert fk.child == "b" and fk.parent == "a"
        assert ds.fk_between("a", "c") is None

    def test_subset_edges(self):
        ds = chain_dataset()
        edges = ds.subset_edges(("a", "b", "c"))
        assert len(edges) == 2
        assert len(ds.subset_edges(("a", "c"))) == 0

    def test_join_correlation(self):
        ds = chain_dataset()
        fk = ds.fk_between("a", "b")
        # b.fk_a has distinct values {0,1,2,3} over a's 4 keys.
        assert ds.join_correlation(fk) == pytest.approx(1.0)

    def test_total_rows(self):
        assert chain_dataset().total_rows == 14

    def test_getitem(self):
        assert chain_dataset()["a"].name == "a"
