"""Exact join counting, verified against brute-force enumeration."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.counting import count_join, join_size, selectivity
from repro.db.schema import Dataset, ForeignKey
from repro.db.table import PK_COLUMN, Table


def brute_force_count(dataset, tables, predicates):
    """Enumerate the cross product and filter (tiny inputs only)."""
    table_rows = {t: range(dataset[t].num_rows) for t in tables}
    by_table = {}
    for table, column, lo, hi in predicates:
        by_table.setdefault(table, []).append((column, lo, hi))
    count = 0
    for combo in itertools.product(*[table_rows[t] for t in tables]):
        assignment = dict(zip(tables, combo))
        ok = True
        for fk in dataset.foreign_keys:
            if fk.child in assignment and fk.parent in assignment:
                fk_value = dataset[fk.child][fk.fk_column][assignment[fk.child]]
                pk_value = dataset[fk.parent][PK_COLUMN][assignment[fk.parent]]
                if fk_value != pk_value:
                    ok = False
                    break
        if not ok:
            continue
        for table, preds in by_table.items():
            row = assignment[table]
            for column, lo, hi in preds:
                v = dataset[table][column][row]
                if not (lo <= v <= hi):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            count += 1
    return count


def tiny_dataset(seed=0):
    rng = np.random.default_rng(seed)
    a = Table("a", {PK_COLUMN: np.arange(5),
                    "col0": rng.integers(0, 4, 5)})
    b = Table("b", {PK_COLUMN: np.arange(6),
                    "fk_a": rng.integers(0, 5, 6),
                    "col0": rng.integers(0, 4, 6)})
    c = Table("c", {"fk_a": rng.integers(0, 5, 7),
                    "col0": rng.integers(0, 4, 7)})
    d = Table("d", {"fk_b": rng.integers(0, 6, 8),
                    "col0": rng.integers(0, 4, 8)})
    return Dataset("tiny", [a, b, c, d], [
        ForeignKey("b", "fk_a", "a"),
        ForeignKey("c", "fk_a", "a"),
        ForeignKey("d", "fk_b", "b"),
    ])


ALL_TEMPLATES = [("a",), ("a", "b"), ("a", "c"), ("a", "b", "c"),
                 ("a", "b", "d"), ("a", "b", "c", "d"), ("b", "d")]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("template", ALL_TEMPLATES)
    def test_unfiltered(self, template):
        ds = tiny_dataset()
        assert count_join(ds, template, []) == brute_force_count(ds, template, [])

    @pytest.mark.parametrize("template", ALL_TEMPLATES)
    def test_filtered(self, template):
        ds = tiny_dataset(3)
        preds = [(template[0], "col0", 1, 2)]
        if len(template) > 1:
            preds.append((template[-1], "col0", 0, 2))
        assert count_join(ds, template, preds) == \
            brute_force_count(ds, template, preds)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), lo=st.integers(0, 3), width=st.integers(0, 3))
    def test_star_join_random_predicates(self, seed, lo, width):
        ds = tiny_dataset(seed % 7)
        preds = [("b", "col0", lo, lo + width), ("c", "col0", 0, 2)]
        template = ("a", "b", "c")
        assert count_join(ds, template, preds) == \
            brute_force_count(ds, template, preds)


class TestAPI:
    def test_single_table(self):
        ds = tiny_dataset()
        expected = int(np.sum((ds["a"]["col0"] >= 1) & (ds["a"]["col0"] <= 2)))
        assert count_join(ds, ("a",), [("a", "col0", 1, 2)]) == expected

    def test_disconnected_template_rejected(self):
        ds = tiny_dataset()
        with pytest.raises(ValueError, match="connected"):
            count_join(ds, ("c", "d"), [])

    def test_predicate_outside_template_rejected(self):
        ds = tiny_dataset()
        with pytest.raises(ValueError, match="outside"):
            count_join(ds, ("a",), [("b", "col0", 0, 1)])

    def test_join_size_matches_unfiltered(self):
        ds = tiny_dataset()
        assert join_size(ds, ("a", "b")) == count_join(ds, ("a", "b"), [])

    def test_selectivity_bounds(self):
        ds = tiny_dataset()
        sel = selectivity(ds, ("a", "b"), [("a", "col0", 0, 1)])
        assert 0.0 <= sel <= 1.0

    def test_selectivity_full_range_is_one(self):
        ds = tiny_dataset()
        assert selectivity(ds, ("a",), [("a", "col0", 0, 100)]) == 1.0

    def test_pk_fk_join_size_equals_child_rows(self):
        # Every FK value resolves, so |a ⋈ b| == |b|.
        ds = tiny_dataset()
        assert join_size(ds, ("a", "b")) == ds["b"].num_rows
