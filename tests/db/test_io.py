"""Dataset .npz round-trip (repro.db.io)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.db.io import FORMAT_VERSION, load_dataset, save_dataset
from repro.db.schema import Dataset, ForeignKey
from repro.db.table import Table


def small_dataset():
    parent = Table("parent", {"pk": np.arange(10), "a": np.arange(10) % 3})
    child = Table("child", {"fk_parent": np.array([0, 1, 1, 5, 9]),
                            "b": np.array([4, 4, 2, 0, 7])})
    return Dataset("tiny", [parent, child],
                   [ForeignKey("child", "fk_parent", "parent")])


class TestRoundTrip:
    def test_exact_columns(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        original = small_dataset()
        save_dataset(original, path)
        restored = load_dataset(path)
        assert restored.name == original.name
        assert restored.table_names == original.table_names
        for name in original.table_names:
            orig_t, rest_t = original[name], restored[name]
            assert orig_t.column_names == rest_t.column_names
            for col in orig_t.column_names:
                np.testing.assert_array_equal(orig_t[col], rest_t[col])

    def test_foreign_keys_restored(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        save_dataset(small_dataset(), path)
        restored = load_dataset(path)
        assert restored.foreign_keys == [
            ForeignKey("child", "fk_parent", "parent")]

    def test_generated_dataset_round_trips(self, tmp_path):
        path = str(tmp_path / "gen.npz")
        original = generate_dataset(random_spec(17))
        save_dataset(original, path)
        restored = load_dataset(path)
        assert restored.table_names == original.table_names
        assert len(restored.foreign_keys) == len(original.foreign_keys)
        # The join graph is semantically identical: same connected subsets.
        tables = tuple(original.table_names)
        assert restored.is_connected_subset(tables) == \
            original.is_connected_subset(tables)

    def test_restored_dataset_validates(self, tmp_path):
        """load_dataset goes through Dataset.__init__, re-running validation."""
        path = str(tmp_path / "ds.npz")
        save_dataset(small_dataset(), path)
        restored = load_dataset(path)
        assert restored["child"].fk_columns() == ["fk_parent"]


class TestErrors:
    def test_reserved_separator_in_table_name(self, tmp_path):
        table = Table("bad__name", {"pk": np.arange(3)})
        ds = Dataset("x", [table], [])
        with pytest.raises(ValueError, match="may not contain"):
            save_dataset(ds, str(tmp_path / "x.npz"))

    def test_version_mismatch(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        save_dataset(small_dataset(), path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["metadata"]).decode())
        meta["format_version"] = FORMAT_VERSION + 1
        arrays["metadata"] = np.frombuffer(json.dumps(meta).encode(),
                                           dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_dataset(path)
