"""The estimator-provider layer: memo, fallback chain, timing rule,
plan determinism, and the advisor-in-the-loop smoke test."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.ce.postgres import PostgresEstimator
from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.engine.e2e import TrueCardEstimator, recost_plan, run_e2e
from repro.engine.optimizer import Optimizer
from repro.engine.plans import plan_signature
from repro.engine.providers import (AdvisorProvider, CallableProvider,
                                    CardinalityProvider, HistogramProvider,
                                    ModelProvider, TrueCardProvider,
                                    as_provider)
from repro.testbed.scores import ScoreLabel
from repro.workload.query import Query


class TestMemoAccounting:
    def test_memo_serves_repeat_subqueries(self, small_dataset,
                                           small_workload):
        underlying = []

        def source(query):
            underlying.append(query)
            return 10.0

        provider = CallableProvider(source, name="counted")
        query = max(small_workload.test, key=lambda q: len(q.tables))
        sub = query.restrict(query.tables[:1])
        assert provider.estimate(sub) == 10.0
        assert provider.estimate(sub) == 10.0
        assert provider.stats.calls == 2
        assert provider.stats.memo_hits == 1
        assert len(underlying) == 1

    def test_memo_spans_optimizer_queries(self, small_dataset,
                                          small_workload):
        """Re-planning the same query hits the provider memo throughout."""
        provider = as_provider(TrueCardEstimator(small_dataset))
        optimizer = Optimizer(small_dataset)
        query = max(small_workload.test, key=lambda q: len(q.tables))
        optimizer.plan(query, provider)
        first_hits = provider.stats.memo_hits
        calls_after_first = provider.stats.calls
        optimizer.plan(query, provider)
        assert provider.stats.calls > calls_after_first
        # Every estimate of the second plan() was served from the memo.
        assert (provider.stats.memo_hits - first_hits
                == provider.stats.calls - calls_after_first)

    def test_memo_can_be_disabled(self):
        calls = []
        provider = CallableProvider(lambda q: calls.append(q) or 7.0,
                                    memo=False)
        sub = Query(("t",))
        provider.estimate(sub)
        provider.estimate(sub)
        assert len(calls) == 2
        assert provider.stats.memo_hits == 0


class TestFallbackChain:
    def test_source_exception_falls_back(self):
        def broken(query):
            raise RuntimeError("model crashed")

        fallback = CallableProvider(lambda q: 42.0, name="histogram")
        provider = CallableProvider(broken, name="broken", fallback=fallback)
        assert provider.estimate(Query(("t",))) == 42.0
        assert provider.stats.fallbacks == 1
        assert fallback.stats.calls == 1

    def test_invalid_estimate_falls_back(self):
        values = iter([float("nan"), float("inf"), -3.0])
        fallback = CallableProvider(lambda q: 5.0)
        provider = CallableProvider(lambda q: next(values),
                                    fallback=fallback, memo=False)
        for _ in range(3):
            assert provider.estimate(Query(("t",))) == 5.0
        assert provider.stats.fallbacks == 3

    def test_zero_is_a_valid_estimate_not_a_fallback(self):
        fallback = CallableProvider(lambda q: 99.0)
        provider = CallableProvider(lambda q: 0.0, fallback=fallback)
        assert provider.estimate(Query(("t",))) == 0.0
        assert provider.stats.fallbacks == 0

    def test_no_fallback_reraises(self):
        def broken(query):
            raise RuntimeError("model crashed")

        with pytest.raises(RuntimeError):
            CallableProvider(broken).estimate(Query(("t",)))

    def test_no_fallback_invalid_raises_value_error(self):
        with pytest.raises(ValueError):
            CallableProvider(lambda q: float("nan")).estimate(Query(("t",)))

    def test_chain_of_three(self, small_dataset):
        oracle = TrueCardProvider(small_dataset)
        middle = CallableProvider(lambda q: float("nan"), name="mid",
                                  fallback=oracle, memo=False)
        head = CallableProvider(lambda q: (_ for _ in ()).throw(IOError()),
                                name="head", fallback=middle, memo=False)
        table = small_dataset.table_names[0]
        expected = float(small_dataset[table].num_rows)
        assert head.estimate(Query((table,))) == expected
        assert head.stats.fallbacks == 1
        assert middle.stats.fallbacks == 1
        # The oracle's clock never counts as inference anywhere up the chain.
        assert oracle.inference_time == 0.0


class TestInferenceTimeRule:
    def test_oracle_clock_reads_zero(self, small_dataset, small_workload):
        provider = TrueCardProvider(small_dataset)
        for query in small_workload.test[:5]:
            provider.estimate(query)
        assert provider.stats.elapsed_s > 0.0
        assert provider.inference_time == 0.0

    def test_model_clock_counts(self, small_dataset, small_workload,
                                small_ctx):
        model = PostgresEstimator()
        model.fit(small_ctx)
        provider = HistogramProvider(model)
        for query in small_workload.test[:5]:
            provider.estimate(query)
        assert provider.inference_time == provider.stats.elapsed_s > 0.0
        assert provider.name == "PostgreSQL"

    def test_as_provider_maps_truecard_estimator(self, small_dataset):
        provider = as_provider(TrueCardEstimator(small_dataset))
        assert isinstance(provider, TrueCardProvider)
        assert provider.counts_inference_time is False

    def test_as_provider_passthrough_and_errors(self, small_dataset):
        provider = TrueCardProvider(small_dataset)
        assert as_provider(provider) is provider
        with pytest.raises(ValueError):
            as_provider(provider, fallback=CallableProvider(lambda q: 1.0))
        with pytest.raises(TypeError):
            as_provider(object())


class TestPlanDeterminism:
    def test_double_run_byte_identical(self, small_dataset, small_workload,
                                       small_ctx):
        """Same provider → byte-identical PlannedQuery across double runs."""
        model = PostgresEstimator()
        model.fit(small_ctx)

        def plan_all():
            provider = ModelProvider(model)
            optimizer = Optimizer(small_dataset)
            return [optimizer.plan(q, provider) for q in small_workload.test]

        first, second = plan_all(), plan_all()
        assert pickle.dumps(first) == pickle.dumps(second)
        assert [plan_signature(p.plan) for p in first] \
            == [plan_signature(p.plan) for p in second]

    def test_run_e2e_plans_deterministic(self, small_dataset, small_workload):
        a = run_e2e(small_dataset, small_workload.test[:5],
                    TrueCardEstimator(small_dataset))
        b = run_e2e(small_dataset, small_workload.test[:5],
                    TrueCardEstimator(small_dataset))
        assert a.plan_signatures == b.plan_signatures
        assert a.plan_cost == b.plan_cost
        assert a.result_rows == b.result_rows

    def test_recost_plan_matches_optimizer_objective(self, small_dataset,
                                                     small_workload):
        """Re-costing a TrueCard plan under TrueCard cardinalities must
        reproduce the optimizer's own objective for that plan."""
        provider = TrueCardProvider(small_dataset)
        optimizer = Optimizer(small_dataset)
        for query in small_workload.test[:5]:
            planned = optimizer.plan(query, provider)
            recost = recost_plan(planned.plan, small_dataset, provider)
            assert recost == pytest.approx(planned.cost, rel=1e-12)


def _biased_labels(names: tuple[str, ...], favorite: str,
                   count: int) -> list[ScoreLabel]:
    """Labels ranking ``favorite`` best on accuracy and efficiency."""
    labels = []
    for _ in range(count):
        sa = np.full(len(names), 0.2)
        se = np.full(len(names), 0.2)
        sa[names.index(favorite)] = 1.0
        se[names.index(favorite)] = 1.0
        labels.append(ScoreLabel(model_names=names, sa=sa, se=se))
    return labels


class TestAdvisorInTheLoop:
    def test_advisor_provider_smoke(self, small_dataset, single_dataset,
                                    small_workload, small_ctx):
        """2-dataset corpus → AutoCE pick → delegated planning end to end."""
        names = ("Postgres", "TrueCard-ish")
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=8, embedding_dim=8, use_incremental=False,
            dml=DMLConfig(epochs=2, batch_size=2), seed=0))
        graphs = [advisor.featurize(small_dataset),
                  advisor.featurize(single_dataset)]
        advisor.fit_graphs(graphs, _biased_labels(names, "Postgres", 2))

        postgres = PostgresEstimator()
        postgres.fit(small_ctx)
        models = {"Postgres": postgres,
                  "TrueCard-ish": TrueCardEstimator(small_dataset)}
        provider = AdvisorProvider(advisor, graphs[0], models,
                                   accuracy_weight=1.0)
        result = run_e2e(small_dataset, small_workload.test[:5], provider)
        assert provider.picked == "Postgres"
        assert provider.selection_s > 0.0
        assert result.estimator == "AutoCE(w_a=1)"
        # The executed answers must equal the TrueCard run's answers —
        # estimates steer plans, never results.
        oracle = run_e2e(small_dataset, small_workload.test[:5],
                         TrueCardEstimator(small_dataset))
        assert result.result_rows == oracle.result_rows
        assert result.inference_time > 0.0

    def test_advisor_pick_outside_models_raises(self, small_dataset,
                                                single_dataset):
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=8, embedding_dim=8, use_incremental=False,
            dml=DMLConfig(epochs=2, batch_size=2), seed=0))
        graphs = [advisor.featurize(small_dataset),
                  advisor.featurize(single_dataset)]
        advisor.fit_graphs(graphs, _biased_labels(("A", "B"), "A", 2))
        provider = AdvisorProvider(advisor, graphs[0],
                                   {"B": PostgresEstimator()})
        with pytest.raises(KeyError):
            provider.pick()


class TestProviderHygiene:
    def test_reset_stats_keeps_memo(self):
        calls = []
        provider = CallableProvider(lambda q: calls.append(q) or 3.0)
        sub = Query(("t",))
        provider.estimate(sub)
        provider.reset_stats()
        assert provider.stats.calls == 0
        provider.estimate(sub)
        assert provider.stats.memo_hits == 1
        assert len(calls) == 1

    def test_clear_memo(self):
        calls = []
        provider = CallableProvider(lambda q: calls.append(q) or 3.0)
        sub = Query(("t",))
        provider.estimate(sub)
        provider.clear_memo()
        provider.estimate(sub)
        assert len(calls) == 2

    def test_repr_names_provider(self, small_dataset):
        assert "TrueCard" in repr(TrueCardProvider(small_dataset))
