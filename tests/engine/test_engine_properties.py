"""Property-style tests of the optimizer/executor substrate.

The engine is the PostgreSQL substitute of Table V, so its load-bearing
properties are (1) *execution correctness* — a plan returns exactly the
query's true cardinality regardless of join order or operators — and
(2) *cost sensitivity* — misestimated cardinalities really do change plans.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.counting import count_join
from repro.engine.cost import CostModel
from repro.engine.e2e import TrueCardEstimator
from repro.engine.execution import Executor
from repro.engine.optimizer import Optimizer
from repro.engine.plans import JoinNode, ScanNode, plan_joins
from repro.workload.generator import generate_query
from repro.workload.query import Predicate, Query


@pytest.fixture(scope="module")
def planner(small_dataset):
    return Optimizer(small_dataset)


@pytest.fixture(scope="module")
def truecard(small_dataset):
    return TrueCardEstimator(small_dataset)


class TestExecutionCorrectness:
    """Executed row counts must equal the exact join counts."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_plan_count_matches_ground_truth(self, small_dataset, planner,
                                             truecard, seed):
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        true = count_join(small_dataset, query.tables,
                          query.predicate_tuples())
        planned = planner.plan(query, truecard.estimate)
        result = Executor(small_dataset).execute(planned.plan)
        assert result.rows == true

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), noise=st.floats(0.01, 100.0))
    def test_count_correct_even_with_bad_estimates(self, small_dataset,
                                                   planner, seed, noise):
        """Misestimation may change the plan, never the answer."""
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        true = count_join(small_dataset, query.tables,
                          query.predicate_tuples())
        exact = TrueCardEstimator(small_dataset)
        planned = planner.plan(query,
                               lambda q: exact.estimate(q) * noise + 1.0)
        result = Executor(small_dataset).execute(planned.plan)
        assert result.rows == true

    def test_index_and_seq_scans_agree(self, small_dataset):
        table = small_dataset.table_names[0]
        column = small_dataset[table].data_columns()[0]
        values = small_dataset[table][column]
        lo, hi = int(np.percentile(values, 20)), int(np.percentile(values, 70))
        preds = (Predicate(table, column, lo, hi),)
        executor = Executor(small_dataset)
        seq = executor._scan(ScanNode(table, preds, method="seq"))
        index = executor._scan(ScanNode(table, preds, method="index"))
        np.testing.assert_array_equal(np.sort(seq), np.sort(index))


class TestPlanStructure:
    def test_plan_covers_all_tables(self, small_dataset, planner, truecard):
        query = Query(tuple(small_dataset.table_names))
        planned = planner.plan(query, truecard.estimate)
        assert set(planned.plan.tables) == set(small_dataset.table_names)

    def test_join_count_is_tables_minus_one(self, small_dataset, planner,
                                            truecard):
        query = Query(tuple(small_dataset.table_names))
        planned = planner.plan(query, truecard.estimate)
        assert len(plan_joins(planned.plan)) == len(query.tables) - 1

    def test_single_table_plan_is_scan(self, small_dataset, planner, truecard):
        query = Query((small_dataset.table_names[0],))
        planned = planner.plan(query, truecard.estimate)
        assert isinstance(planned.plan, ScanNode)

    def test_disconnected_tables_rejected(self, planner):
        with pytest.raises(Exception):
            planner.plan(Query(("tableA", "tableB")), lambda q: 1.0)

    def test_estimator_called_per_connected_subset(self, small_dataset,
                                                   planner, truecard):
        query = Query(tuple(small_dataset.table_names))
        planned = planner.plan(query, truecard.estimate)
        # One call per connected subset, memoized.
        subsets = small_dataset.connected_subsets()
        assert planned.estimator_calls <= len(subsets)
        assert planned.estimator_calls >= len(query.tables)

    def test_describe_mentions_every_table(self, small_dataset, planner,
                                           truecard):
        query = Query(tuple(small_dataset.table_names))
        planned = planner.plan(query, truecard.estimate)
        text = planned.plan.describe()
        for table in small_dataset.table_names:
            assert table in text


class TestCostSensitivity:
    def test_overestimates_flip_scan_method(self, small_dataset, planner):
        """A tiny selective scan should use the index; a huge one seq."""
        table = small_dataset.table_names[0]
        rows = small_dataset[table].num_rows
        model = CostModel()
        selective_method, _ = model.best_scan(rows, 1.0)
        full_method, _ = model.best_scan(rows, float(rows))
        assert selective_method == "index"
        assert full_method == "seq"

    def test_wild_overestimate_changes_plan_cost(self, small_dataset, planner,
                                                 truecard):
        query = Query(tuple(small_dataset.table_names))
        good = planner.plan(query, truecard.estimate)
        bad = planner.plan(query, lambda q: 1e7)
        assert bad.cost > good.cost

    def test_truecard_plan_is_cheapest_under_true_costing(
            self, small_dataset, planner, truecard):
        """Planning with the truth can never lose to planning with noise,
        when both plans are re-costed under the truth."""
        rng = np.random.default_rng(7)
        templates = small_dataset.connected_subsets()

        def true_cost(planned_plan) -> float:
            # Re-plan the same join order is complex; instead compare the
            # optimizer's own objective under the true cardinalities.
            return planner.plan(
                Query(tuple(small_dataset.table_names)),
                truecard.estimate).cost

        base = planner.plan(Query(tuple(small_dataset.table_names)),
                            truecard.estimate)
        for trial in range(3):
            noisy = planner.plan(
                Query(tuple(small_dataset.table_names)),
                lambda q: truecard.estimate(q) * float(rng.uniform(0.01, 100)))
            # The optimizer believes its own numbers; the *true*-cost plan
            # found with the truth is optimal for the DP's search space.
            assert base.cost <= true_cost(noisy) + 1e-9
