"""The PostgreSQL substitute: cost model, optimizer, executor, E2E harness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.counting import count_join
from repro.engine.cost import CostModel
from repro.engine.e2e import TrueCardEstimator, run_e2e
from repro.engine.execution import Executor
from repro.engine.optimizer import Optimizer
from repro.engine.plans import JoinNode, ScanNode, plan_joins
from repro.workload.generator import generate_query, generate_workload
from repro.workload.query import Predicate, Query


class TestCostModel:
    def test_selective_prefers_index(self):
        cost = CostModel()
        method, _ = cost.best_scan(table_rows=100_000, output_rows=5)
        assert method == "index"

    def test_unselective_prefers_seq(self):
        cost = CostModel()
        method, _ = cost.best_scan(table_rows=1000, output_rows=900)
        assert method == "seq"

    def test_index_nl_beats_hash_for_small_outer(self):
        cost = CostModel()
        nl = cost.index_nl_join(left_rows=10, output_rows=10)
        hash_ = cost.hash_join(left_rows=10, right_rows=100_000,
                               output_rows=10)
        assert nl < hash_


class TestOptimizer:
    def test_single_table_plan(self, small_dataset, small_workload):
        query = next(q for q in small_workload.test if len(q.tables) == 1)
        opt = Optimizer(small_dataset)
        true = TrueCardEstimator(small_dataset)
        planned = opt.plan(query, true.estimate)
        assert isinstance(planned.plan, ScanNode)
        assert planned.estimator_calls == 1

    def test_multi_table_plan_covers_all_tables(self, small_dataset,
                                                small_workload):
        query = max(small_workload.test, key=lambda q: len(q.tables))
        opt = Optimizer(small_dataset)
        true = TrueCardEstimator(small_dataset)
        planned = opt.plan(query, true.estimate)
        assert set(planned.plan.tables) == set(query.tables)

    def test_estimator_calls_cached_per_subset(self, small_dataset,
                                               small_workload):
        query = max(small_workload.test, key=lambda q: len(q.tables))
        opt = Optimizer(small_dataset)
        calls = []

        def estimator(sub):
            calls.append(sub.template)
            return 10.0

        opt.plan(query, estimator)
        assert len(calls) == len(set(calls))  # no duplicate estimates

    def test_unjoinable_rejected(self, small_dataset):
        # Construct a disconnected pair if the schema has one.
        names = sorted(small_dataset.table_names)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                pair = (names[i], names[j])
                if not small_dataset.is_connected_subset(pair):
                    opt = Optimizer(small_dataset)
                    with pytest.raises(ValueError):
                        opt.plan(Query(pair), lambda q: 1.0)
                    return
        pytest.skip("schema fully connected")

    def test_plan_describe_renders(self, small_dataset, small_workload):
        query = max(small_workload.test, key=lambda q: len(q.tables))
        planned = Optimizer(small_dataset).plan(
            query, TrueCardEstimator(small_dataset).estimate)
        text = planned.plan.describe()
        for table in query.tables:
            assert table in text

    def test_plan_joins_enumeration(self, small_dataset, small_workload):
        query = max(small_workload.test, key=lambda q: len(q.tables))
        planned = Optimizer(small_dataset).plan(
            query, TrueCardEstimator(small_dataset).estimate)
        joins = plan_joins(planned.plan)
        assert len(joins) == len(query.tables) - 1


class TestExecutor:
    def test_rows_match_exact_count(self, small_dataset, small_workload):
        opt = Optimizer(small_dataset)
        executor = Executor(small_dataset)
        true = TrueCardEstimator(small_dataset)
        for query in small_workload.test:
            planned = opt.plan(query, true.estimate)
            result = executor.execute(planned.plan)
            expected = count_join(small_dataset, query.tables,
                                  query.predicate_tuples())
            assert result.rows == expected

    def test_rows_invariant_to_estimator(self, small_dataset, small_workload):
        """Any estimate quality must yield the same answer, only other speed."""
        opt = Optimizer(small_dataset)
        executor = Executor(small_dataset)
        query = max(small_workload.test, key=lambda q: len(q.tables))
        plans = [
            opt.plan(query, lambda q: 1.0).plan,
            opt.plan(query, lambda q: 1e9).plan,
            opt.plan(query, TrueCardEstimator(small_dataset).estimate).plan,
        ]
        rows = {executor.execute(p).rows for p in plans}
        assert len(rows) == 1

    def test_index_and_seq_scan_agree(self, small_dataset):
        table = small_dataset.table_names[0]
        col = small_dataset[table].data_columns()[0]
        preds = (Predicate(table, col, 2, 6),)
        executor = Executor(small_dataset)
        seq = executor.execute(ScanNode(table, preds, "seq"))
        index = executor.execute(ScanNode(table, preds, "index"))
        assert seq.rows == index.rows

    def test_empty_result(self, small_dataset):
        table = small_dataset.table_names[0]
        col = small_dataset[table].data_columns()[0]
        hi = int(small_dataset[table][col].max())
        preds = (Predicate(table, col, hi + 10, hi + 20),)
        result = Executor(small_dataset).execute(ScanNode(table, preds, "seq"))
        assert result.rows == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_random_queries_exact(self, small_dataset, seed):
        rng = np.random.default_rng(seed)
        templates = small_dataset.connected_subsets()
        query = generate_query(small_dataset, rng, templates)
        planned = Optimizer(small_dataset).plan(
            query, TrueCardEstimator(small_dataset).estimate)
        result = Executor(small_dataset).execute(planned.plan)
        assert result.rows == count_join(small_dataset, query.tables,
                                         query.predicate_tuples())


class TestE2E:
    def test_truecard_has_zero_inference(self, small_dataset, small_workload):
        result = run_e2e(small_dataset, small_workload.test[:5],
                         TrueCardEstimator(small_dataset))
        assert result.inference_time == 0.0
        assert result.execution_time > 0.0
        assert result.queries == 5

    def test_model_inference_time_recorded(self, small_dataset,
                                           small_workload, small_ctx):
        from repro.ce.postgres import PostgresEstimator
        model = PostgresEstimator()
        model.fit(small_ctx)
        result = run_e2e(small_dataset, small_workload.test[:5], model)
        assert result.inference_time > 0.0
        assert result.total_time == pytest.approx(
            result.execution_time + result.inference_time)
