"""Percentile accuracy metrics and the robust latency protocol.

The paper (Sec. IV-B2) uses mean Q-error but notes that 50th/95th/99th
percentiles are equally valid accuracy statistics; labels record all four
and can be re-normalized on any of them.  Latency is measured as the
per-query minimum over repetitions after a warm-up pass, so the efficiency
half of a label is stable across labeling runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce.base import CEModel, TrainingContext
from repro.testbed.runner import TestbedConfig, evaluate_model, run_testbed
from repro.testbed.scores import ACCURACY_METRICS, DatasetLabel, ScoreLabel


def full_label():
    return DatasetLabel(
        model_names=("A", "B", "C"),
        qerror_means=[1.5, 3.0, 6.0],
        latency_means=[0.002, 0.001, 0.004],
        qerror_medians=[1.2, 1.1, 4.0],
        qerror_p95=[2.0, 9.0, 11.0],
        qerror_p99=[2.5, 30.0, 12.0],
    )


class TestAccuracyStat:
    def test_mean_is_default(self):
        label = full_label()
        np.testing.assert_allclose(label.accuracy_stat(), [1.5, 3.0, 6.0])

    @pytest.mark.parametrize("metric,expected", [
        ("median", [1.2, 1.1, 4.0]),
        ("p95", [2.0, 9.0, 11.0]),
        ("p99", [2.5, 30.0, 12.0]),
    ])
    def test_percentile_stats(self, metric, expected):
        np.testing.assert_allclose(full_label().accuracy_stat(metric), expected)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown accuracy metric"):
            full_label().accuracy_stat("p42")

    def test_missing_statistic_rejected(self):
        thin = DatasetLabel(model_names=("A", "B"), qerror_means=[1, 2],
                            latency_means=[1, 2])
        with pytest.raises(ValueError, match="without the 'p95' statistic"):
            thin.accuracy_stat("p95")

    def test_all_declared_metrics_supported(self):
        label = full_label()
        for metric in ACCURACY_METRICS:
            assert len(label.accuracy_stat(metric)) == 3


class TestWithAccuracyMetric:
    def test_renormalizes_accuracy_only(self):
        label = full_label()
        p99 = label.with_accuracy_metric("p99")
        assert isinstance(p99, ScoreLabel)
        # Efficiency scores are untouched.
        np.testing.assert_allclose(p99.se, label.se)
        # Under p99, B (30.0) is the worst model, not C.
        assert p99.sa[1] == pytest.approx(0.0)
        assert p99.sa[0] == pytest.approx(1.0)

    def test_can_flip_the_optimal_model(self):
        label = full_label()
        assert label.best_model(1.0) == "A"
        # Under the median, B (1.1) is the most accurate model.
        assert label.with_accuracy_metric("median").best_model(1.0) == "B"

    def test_mean_metric_is_identity(self):
        label = full_label()
        same = label.with_accuracy_metric("mean")
        np.testing.assert_allclose(same.sa, label.sa)
        np.testing.assert_allclose(same.se, label.se)

    @settings(max_examples=20, deadline=None)
    @given(w=st.floats(0.0, 1.0))
    def test_score_vectors_stay_bounded(self, w):
        scores = full_label().with_accuracy_metric("p95").score_vector(w)
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)


class TestSubsetPreservesPercentiles:
    def test_subset_carries_all_statistics(self):
        sub = full_label().subset(["C", "A"])
        np.testing.assert_allclose(sub.qerror_p95, [11.0, 2.0])
        np.testing.assert_allclose(sub.qerror_p99, [12.0, 2.5])
        np.testing.assert_allclose(sub.qerror_medians, [4.0, 1.2])

    def test_subset_without_percentiles(self):
        thin = DatasetLabel(model_names=("A", "B"), qerror_means=[1, 2],
                            latency_means=[1, 2])
        sub = thin.subset(["B"])
        assert sub.qerror_p95 is None


class _SleepyModel(CEModel):
    """Deterministic estimator whose first estimate is artificially slow."""

    name = "Sleepy"

    def __init__(self):
        self.calls = 0

    def fit(self, ctx) -> None:
        pass

    def estimate(self, query) -> float:
        import time
        self.calls += 1
        if self.calls == 1:
            time.sleep(0.05)  # cold-start spike, e.g. a lazy template fit
        return 42.0


class TestRobustLatency:
    def test_warmup_hides_cold_start(self, single_dataset, single_workload):
        ctx = TrainingContext.build(single_dataset, single_workload)
        perf = evaluate_model(_SleepyModel(), ctx, latency_reps=2, warmup=True)
        # The 50 ms cold-start spike lands in the warm-up pass, not in the
        # timed repetitions.
        assert perf.latency_mean < 0.01

    def test_no_warmup_pays_cold_start(self, single_dataset, single_workload):
        ctx = TrainingContext.build(single_dataset, single_workload)
        perf = evaluate_model(_SleepyModel(), ctx, latency_reps=1, warmup=False)
        num_queries = len(single_workload.test)
        assert perf.latency_mean > 0.04 / num_queries

    def test_percentiles_recorded_by_testbed(self, single_dataset,
                                             single_workload):
        config = TestbedConfig(mscn_epochs=5, lwnn_epochs=5, made_epochs=2,
                               latency_reps=1)
        label = run_testbed(single_dataset, workload=single_workload,
                            config=config)
        for metric in ACCURACY_METRICS:
            stats = label.accuracy_stat(metric)
            assert len(stats) == len(label.model_names)
            assert np.all(stats >= 1.0)
        # p99 dominates p95 dominates the median.
        assert np.all(label.qerror_p99 >= label.qerror_p95 - 1e-12)
        assert np.all(label.qerror_p95 >= label.qerror_medians - 1e-12)
