"""Metrics, score normalization, D-error and the testbed runner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testbed import (DatasetLabel, ScoreLabel, TestbedConfig,
                           WEIGHT_GRID, minmax_scores, qerror, run_testbed,
                           summarize_qerrors)


class TestQError:
    def test_exact_is_one(self):
        assert qerror(100, 100) == 1.0

    def test_symmetric(self):
        assert qerror(10, 1000) == qerror(1000, 10)

    def test_floor_at_one_row(self):
        assert qerror(0.2, 0) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(est=st.floats(0.0, 1e9), true=st.floats(0.0, 1e9))
    def test_always_at_least_one(self, est, true):
        assert qerror(est, true) >= 1.0

    def test_vectorized(self):
        out = qerror(np.array([1, 10]), np.array([10, 1]))
        np.testing.assert_allclose(out, [10, 10])

    def test_summarize_keys(self):
        stats = summarize_qerrors(np.array([1.0, 2.0, 3.0]))
        assert set(stats) == {"mean", "median", "p95", "p99", "max"}
        assert stats["mean"] == pytest.approx(2.0)

    def test_summarize_empty(self):
        assert summarize_qerrors(np.array([]))["mean"] == 1.0


class TestMinMax:
    def test_best_gets_one_worst_gets_zero(self):
        scores = minmax_scores(np.array([1.0, 3.0, 5.0]))
        np.testing.assert_allclose(scores, [1.0, 0.5, 0.0])

    def test_degenerate_all_equal(self):
        np.testing.assert_allclose(minmax_scores(np.array([2.0, 2.0])), [1, 1])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=8))
    def test_bounds(self, values):
        scores = minmax_scores(np.array(values))
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)


def make_label():
    return DatasetLabel(
        model_names=("A", "B", "C"),
        qerror_means=[1.2, 2.0, 10.0],
        latency_means=[0.010, 0.001, 0.003],
    )


class TestDatasetLabel:
    def test_accuracy_order(self):
        label = make_label()
        sa = label.accuracy_scores()
        assert sa[0] > sa[1] > sa[2]

    def test_efficiency_order(self):
        label = make_label()
        se = label.efficiency_scores()
        assert se[1] > se[2] > se[0]

    def test_score_vector_weighting(self):
        label = make_label()
        np.testing.assert_allclose(label.score_vector(1.0),
                                   np.maximum(label.accuracy_scores(), 1e-3))
        np.testing.assert_allclose(label.score_vector(0.0),
                                   np.maximum(label.efficiency_scores(), 1e-3))

    def test_best_model_flips_with_weight(self):
        label = make_label()
        assert label.best_model(1.0) == "A"
        assert label.best_model(0.0) == "B"

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            make_label().score_vector(1.5)

    def test_d_error_zero_for_best(self):
        label = make_label()
        assert label.d_error(label.best_model(0.7), 0.7) == 0.0

    def test_d_error_positive_and_clipped(self):
        label = make_label()
        worst = label.model_names[int(np.argmin(label.score_vector(1.0)))]
        assert label.d_error(worst, 1.0) == 1.0  # clipped
        assert label.d_error(worst, 1.0, clip=None) > 1.0

    def test_label_matrix_shape(self):
        assert make_label().label_matrix().shape == (len(WEIGHT_GRID), 3)

    def test_subset_renormalizes(self):
        label = make_label()
        sub = label.subset(["A", "B"])
        # Within {A, B}: A best accuracy (score 1), B worst (score 0→floor).
        np.testing.assert_allclose(
            sub.accuracy_scores(), [1.0, 0.0])
        assert sub.model_names == ("A", "B")

    def test_mix_with_midpoint(self):
        label = make_label()
        mixed = label.mix_with(label.subset(["A", "B", "C"]), 0.5)
        np.testing.assert_allclose(mixed.sa, label.sa)

    def test_mix_requires_same_models(self):
        label = make_label()
        with pytest.raises(ValueError):
            label.mix_with(label.subset(["A", "B"]), 0.5)

    def test_mix_convexity(self):
        a = make_label()
        b = DatasetLabel(("A", "B", "C"), [5.0, 1.1, 2.0],
                         [0.001, 0.002, 0.004])
        for lam in (0.0, 0.3, 1.0):
            mixed = a.mix_with(b, lam)
            np.testing.assert_allclose(
                mixed.sa, lam * a.sa + (1 - lam) * b.sa)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ScoreLabel(("A",), np.array([1.0, 2.0]), np.array([1.0]))


TINY = TestbedConfig(num_train_queries=30, num_test_queries=10,
                     sample_size=300, mscn_epochs=8, lwnn_epochs=10,
                     made_epochs=2, made_hidden=16, made_samples=16)


class TestRunner:
    def test_labels_all_candidates(self, small_dataset):
        label = run_testbed(small_dataset, config=TINY)
        assert len(label.model_names) == 7
        assert np.all(label.qerror_means >= 1.0)
        assert np.all(label.latency_means > 0.0)

    def test_include_baselines_appends_two(self, small_dataset):
        config = TestbedConfig(**{**vars(TINY), "include_baselines": True})
        label = run_testbed(small_dataset, config=config)
        assert label.model_names[-2:] == ("Postgres", "Ensemble")
        assert len(label.model_names) == 9

    def test_model_subset(self, small_dataset):
        label = run_testbed(small_dataset, config=TINY,
                            model_names=["MSCN", "LW-NN"])
        assert label.model_names == ("MSCN", "LW-NN")

    def test_unknown_model_rejected(self, small_dataset):
        with pytest.raises(KeyError):
            run_testbed(small_dataset, config=TINY, model_names=["Nope"])
