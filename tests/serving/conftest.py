"""Serving-suite guard rails.

Every test in this directory runs under a hard wall-clock timeout: the
suite's whole point is killing, stalling and restarting worker processes,
and a supervisor bug must fail the test quickly instead of hanging the
pipeline until CI's global timeout.  SIGALRM (main thread, POSIX) stands
in for a pytest timeout plugin so no extra dependency is needed.
"""

import signal

import pytest

#: Generous per-test ceiling (seconds) — drills finish in well under 10.
TEST_TIMEOUT = 60


@pytest.fixture(autouse=True)
def per_test_timeout():
    def on_timeout(signum, frame):
        raise TimeoutError(
            f"serving test exceeded {TEST_TIMEOUT}s — a worker or the "
            "supervisor is hung")

    previous = signal.signal(signal.SIGALRM, on_timeout)
    signal.alarm(TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
