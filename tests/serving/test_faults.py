"""The fault-injection harness itself, and the storage/embedding faults it
drives: torn and corrupted cache entries, NaN embeddings entering the RCS,
and stale generation stamps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import RecommendationCandidateSet
from repro.testbed.faults import FaultPlan
from repro.testbed.scores import ScoreLabel
from repro.utils.cache import MISSING, DiskCache, PersistentLRUCache

MODELS = ("A", "B", "C")


def score_label(seed=0):
    rng = np.random.default_rng(seed)
    return ScoreLabel(MODELS, rng.uniform(size=3), rng.uniform(size=3))


class TestFaultPlanSchedule:
    def test_empty_plan_injects_nothing(self):
        plan = FaultPlan()
        assert not plan.should_kill(0, 1, 0)
        assert plan.sleep_seconds(0, 1, 0) == 0.0
        assert not plan.scramble_tier(0, 1, 0)
        queries = np.ones((2, 3))
        assert plan.poison_embeddings(queries, 1) is queries

    def test_kill_targets_the_first_incarnation_only(self):
        plan = FaultPlan(kill_at={1: 3})
        assert plan.should_kill(1, 3, incarnation=0)
        assert not plan.should_kill(1, 3, incarnation=1)  # restarted: clean
        assert not plan.should_kill(1, 2, incarnation=0)
        assert not plan.should_kill(0, 3, incarnation=0)

    def test_kill_always_hits_every_incarnation(self):
        plan = FaultPlan(kill_always=frozenset({2}))
        for incarnation in range(4):
            assert plan.should_kill(2, 1, incarnation)

    def test_slow_targets_one_request_of_the_first_incarnation(self):
        plan = FaultPlan(slow_at={0: (2, 0.5)})
        assert plan.sleep_seconds(0, 2, 0) == 0.5
        assert plan.sleep_seconds(0, 1, 0) == 0.0
        assert plan.sleep_seconds(0, 2, 1) == 0.0

    def test_poison_is_seeded_and_copy_on_write(self):
        plan = FaultPlan(seed=9, poison_embedding_at=frozenset({1}))
        clean = np.ones((4, 6))
        poisoned = plan.poison_embeddings(clean, 1)
        assert np.isfinite(clean).all()          # original untouched
        assert not np.isfinite(poisoned).all()
        again = plan.poison_embeddings(np.ones((4, 6)), 1)
        np.testing.assert_array_equal(
            np.isfinite(poisoned), np.isfinite(again))

    def test_plan_pickles(self):
        import pickle

        plan = FaultPlan(seed=3, kill_at={1: 2}, slow_at={0: (1, 0.1)},
                         kill_always=frozenset({4}))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.kill_at == {1: 2}
        assert clone.should_kill(4, 9, 3)


class TestTornAndCorruptCacheEntries:
    def entry_path(self, cache: DiskCache, key: str):
        return cache._path(key)

    def test_torn_entry_reads_as_a_miss_not_a_crash(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put("weights", {"rows": list(range(500))})
        FaultPlan(tear_fraction=0.5).tear_file(self.entry_path(cache, "weights"))
        assert cache.get("weights", MISSING) is MISSING
        # The torn file was discarded; a rewrite fully heals the entry.
        cache.put("weights", {"rows": [1]})
        assert cache.get("weights") == {"rows": [1]}

    def test_corrupt_entry_reads_as_a_miss_not_garbage(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put("emb", np.arange(64, dtype=np.float64))
        FaultPlan(seed=2, corrupt_bytes=16).corrupt_file(
            self.entry_path(cache, "emb"))
        value = cache.get("emb", MISSING)
        # A flipped pickle either fails to parse (miss) or -- for flips in
        # the payload -- still parses; it must never raise mid-serve.
        if value is not MISSING:
            assert isinstance(value, np.ndarray)

    def test_tear_is_deterministic_for_a_given_plan(self, tmp_path):
        payloads = []
        for run in range(2):
            path = tmp_path / f"blob{run}"
            path.write_bytes(bytes(range(256)) * 4)
            FaultPlan(seed=7, tear_fraction=0.25).tear_file(path)
            payloads.append(path.read_bytes())
        assert payloads[0] == payloads[1]

    def test_corrupt_is_deterministic_for_a_given_seed(self, tmp_path):
        payloads = []
        for run in range(2):
            path = tmp_path / f"blob{run}"
            path.write_bytes(bytes(range(256)) * 4)
            FaultPlan(seed=7).corrupt_file(path)
            payloads.append(path.read_bytes())
        assert payloads[0] == payloads[1]
        assert payloads[0] != bytes(range(256)) * 4


class TestStaleGenerationStamps:
    def test_stale_generation_entries_are_unreachable(self, tmp_path):
        directory = tmp_path / "cache"
        cache = PersistentLRUCache(directory, generation="weights-v1")
        cache.put("fingerprint", np.arange(4))

        # A straggler node carrying the fault plan's stale stamp must not
        # serve (or be served) the fresh generation's embeddings.
        plan = FaultPlan(stale_generation="weights-v0")
        stale = PersistentLRUCache(directory, generation=plan.stale_generation)
        assert stale.get("fingerprint", MISSING) is MISSING

        # ... and reopening at the true generation after the straggler ran
        # never resurrects old rows: the store was invalidated.
        fresh = PersistentLRUCache(directory, generation="weights-v1")
        assert fresh.get("fingerprint", MISSING) is MISSING


class TestRCSRejectsNonFiniteEmbeddings:
    def make_rcs(self, n=6, dim=5, seed=0):
        rng = np.random.default_rng(seed)
        return RecommendationCandidateSet(
            rng.normal(size=(n, dim)),
            [score_label(i) for i in range(n)])

    def test_add_rejects_a_nan_embedding(self):
        rcs = self.make_rcs()
        bad = np.ones(5)
        bad[2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            rcs.add(bad, score_label(9))
        assert len(rcs) == 6                    # nothing half-added

    def test_add_rejects_an_inf_embedding(self):
        rcs = self.make_rcs()
        with pytest.raises(ValueError, match="non-finite"):
            rcs.add(np.full(5, np.inf), score_label(9))

    def test_replace_embeddings_rejects_and_names_the_bad_rows(self):
        rcs = self.make_rcs()
        replacement = np.ones((6, 5))
        replacement[1, 3] = np.nan
        replacement[4, 0] = np.inf
        with pytest.raises(ValueError, match=r"row\(s\) 1, 4"):
            rcs.replace_embeddings(replacement)
        # The stored corpus is untouched by the rejected replace.
        assert np.isfinite(rcs.embeddings).all()

    def test_finite_embeddings_still_flow(self):
        rcs = self.make_rcs()
        rcs.add(np.ones(5), score_label(9))
        assert len(rcs) == 7
