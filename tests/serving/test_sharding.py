"""Partitioning, the bit-for-bit merge, and the per-shard runtime."""

import numpy as np
import pytest

from repro.core.predictor import (ANNConfig, QuantizationConfig, exact_search)
from repro.serving import (BreakerConfig, ShardRuntime, ShardSpec,
                           merge_top_k, partition_members, tier_ladder)


def make_corpus(n=48, dim=12, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


def sharded_search(embeddings, queries, k, num_shards, **spec_kwargs):
    """Scatter/merge through in-process ShardRuntimes (no processes)."""
    parts_i, parts_d = [], []
    for shard_id, ids in enumerate(
            partition_members(len(embeddings), num_shards)):
        runtime = ShardRuntime(ShardSpec(
            shard_id=shard_id, global_ids=ids, embeddings=embeddings[ids],
            **spec_kwargs))
        idx, dist = runtime.search(queries, k)
        parts_i.append(idx)
        parts_d.append(dist)
    return merge_top_k(parts_i, parts_d, k)


class TestPartition:
    def test_round_robin_covers_every_member_once(self):
        parts = partition_members(23, 4)
        assert len(parts) == 4
        joined = np.sort(np.concatenate(parts))
        assert np.array_equal(joined, np.arange(23))

    def test_shard_sizes_are_balanced_within_one(self):
        sizes = [len(p) for p in partition_members(23, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_members_gives_empty_tails(self):
        parts = partition_members(2, 5)
        assert [len(p) for p in parts] == [1, 1, 0, 0, 0]

    def test_rejects_a_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            partition_members(10, 0)


class TestMerge:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_merge_is_bit_for_bit_the_single_process_search(self, num_shards):
        embeddings = make_corpus()
        queries = make_corpus(n=7, seed=1)
        want_i, want_d = exact_search(queries, embeddings, 5)
        got_i, got_d = sharded_search(embeddings, queries, 5, num_shards)
        assert np.array_equal(got_i, want_i)
        assert np.array_equal(got_d, want_d)

    def test_merge_breaks_distance_ties_by_lowest_member_index(self):
        # Duplicate rows across different shards tie exactly; the merge
        # must prefer the lower global id, like top_k_neighbors.
        row = np.ones((1, 4))
        embeddings = np.concatenate([row, row * 3, row, row * 3])
        queries = row
        want_i, want_d = exact_search(queries, embeddings, 3)
        got_i, got_d = sharded_search(embeddings, queries, 3, 2)
        assert np.array_equal(got_i, want_i)
        assert np.array_equal(got_d, want_d)

    def test_merge_with_missing_shards_returns_the_partial_top_k(self):
        embeddings = make_corpus()
        queries = make_corpus(n=3, seed=2)
        parts = partition_members(len(embeddings), 3)
        runtimes = [
            ShardRuntime(ShardSpec(shard_id=s, global_ids=ids,
                                   embeddings=embeddings[ids]))
            for s, ids in enumerate(parts)
        ]
        results = [rt.search(queries, 5) for rt in runtimes[:2]]  # shard 2 cut
        got_i, got_d = merge_top_k([r[0] for r in results],
                                   [r[1] for r in results], 5)
        survivors = np.concatenate(parts[:2])
        sub = exact_search(queries, embeddings[survivors], 5)
        assert np.array_equal(got_i, survivors[sub[0]])

    def test_merge_of_nothing_is_empty(self):
        idx, dist = merge_top_k([], [], 5)
        assert idx.shape == (0, 0) and dist.shape == (0, 0)


class TestTierLadder:
    def test_no_quantization_means_exact_only(self):
        assert tier_ladder(16, None) == ("exact",)
        assert tier_ladder(16, QuantizationConfig(enabled=False)) == ("exact",)

    def test_narrow_corpus_starts_at_int8(self):
        ladder = tier_ladder(16, QuantizationConfig(enabled=True))
        assert ladder == ("int8", "exact")

    def test_wide_corpus_starts_at_pq(self):
        ladder = tier_ladder(512, QuantizationConfig(enabled=True))
        assert ladder == ("pq", "int8", "exact")

    def test_explicit_mode_pins_the_top_rung(self):
        ladder = tier_ladder(16, QuantizationConfig(enabled=True, mode="pq"))
        assert ladder == ("pq", "int8", "exact")


class TestShardRuntime:
    def test_serves_global_ids_not_local_indices(self):
        embeddings = make_corpus()
        ids = partition_members(len(embeddings), 3)[1]
        runtime = ShardRuntime(ShardSpec(shard_id=1, global_ids=ids,
                                         embeddings=embeddings[ids]))
        queries = make_corpus(n=4, seed=3)
        got_i, _ = runtime.search(queries, 3)
        assert np.isin(got_i, ids).all()

    def test_quantized_tier_serves_and_probes_healthy(self):
        embeddings = make_corpus(n=64)
        ids = np.arange(64)
        spec = ShardSpec(
            shard_id=0, global_ids=ids, embeddings=embeddings,
            quantization=QuantizationConfig(enabled=True, min_size=1),
            probe_every=1)
        runtime = ShardRuntime(spec)
        assert runtime.breaker.tier == "int8"
        runtime.search(make_corpus(n=2, seed=4), 3)
        assert runtime.last_health.recall_probe is not None
        assert runtime.breaker.tier == "int8"   # healthy probe, no demotion

    def test_scrambled_codes_demote_the_shard_to_exact(self):
        embeddings = make_corpus(n=64, dim=24, seed=5)
        spec = ShardSpec(
            shard_id=0, global_ids=np.arange(64), embeddings=embeddings,
            quantization=QuantizationConfig(enabled=True, min_size=1,
                                            overfetch=1),
            breaker=BreakerConfig(failure_threshold=1, min_recall=0.95),
            probe_every=1)
        runtime = ShardRuntime(spec)
        runtime.scramble_store("int8")
        queries = make_corpus(n=4, dim=24, seed=6)
        for _ in range(4):
            runtime.search(queries, 5)
        assert runtime.breaker.tier == "exact"
        assert runtime.breaker.demotions >= 1
        # The exact floor still answers correctly.
        got_i, got_d = runtime.search(queries, 5)
        want_i, want_d = exact_search(queries, embeddings, 5)
        assert np.array_equal(got_i, want_i)
        assert np.array_equal(got_d, want_d)

    def test_spec_round_trips_through_pickle(self):
        import pickle

        embeddings = make_corpus(n=8)
        spec = ShardSpec(shard_id=2, global_ids=np.arange(8),
                         embeddings=embeddings,
                         ann=ANNConfig(threshold=4),
                         quantization=QuantizationConfig(enabled=True))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.shard_id == 2
        assert np.array_equal(clone.embeddings, embeddings)
        assert clone.ann.threshold == 4
