"""Unit tests for the daemon micro-batch coalescer."""

import io
import os

import pytest

from repro.serving import BatchingConfig, iter_batches


class TestBatchingConfig:
    def test_defaults(self):
        config = BatchingConfig()
        assert config.max_batch == 16
        assert config.window_ms == 5.0

    def test_rejects_non_positive_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingConfig(max_batch=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match="window_ms"):
            BatchingConfig(window_ms=-1.0)


class TestIterBatches:
    """io.StringIO has no selectable fd, so the coalescer drains it
    greedily — everything buffered joins the batch up to max_batch."""

    def test_empty_stream_yields_nothing(self):
        assert list(iter_batches(io.StringIO(""))) == []

    def test_blank_lines_are_skipped(self):
        stream = io.StringIO("\n\n  \na\n\nb\n")
        assert list(iter_batches(stream)) == [["a", "b"]]

    def test_max_batch_splits_the_stream(self):
        stream = io.StringIO("a\nb\nc\nd\ne\n")
        config = BatchingConfig(max_batch=2, window_ms=0)
        assert list(iter_batches(stream, config)) == [
            ["a", "b"], ["c", "d"], ["e"]]

    def test_max_batch_one_is_serial(self):
        stream = io.StringIO("a\nb\nc\n")
        config = BatchingConfig(max_batch=1, window_ms=0)
        assert list(iter_batches(stream, config)) == [["a"], ["b"], ["c"]]

    def test_eof_flushes_partial_batch(self):
        stream = io.StringIO("a\nb")  # no trailing newline
        assert list(iter_batches(stream)) == [["a", "b"]]

    def test_order_is_preserved(self):
        lines = [f"path-{i}" for i in range(40)]
        stream = io.StringIO("\n".join(lines) + "\n")
        config = BatchingConfig(max_batch=7, window_ms=0)
        flat = [line for batch in iter_batches(stream, config)
                for line in batch]
        assert flat == lines

    def test_pipe_stream_respects_window(self):
        """A real pipe is selectable: with a zero window only already-
        buffered lines join, and the reader blocks for each next batch's
        first line (EOF from the closed write end stops it)."""
        read_fd, write_fd = os.pipe()
        with os.fdopen(write_fd, "w") as writer:
            writer.write("a\nb\nc\n")
        config = BatchingConfig(max_batch=16, window_ms=50.0)
        with os.fdopen(read_fd, "r") as reader:
            batches = list(iter_batches(reader, config))
        assert batches == [["a", "b", "c"]]
