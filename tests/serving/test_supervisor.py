"""The shard supervisor: scatter-gather, crash restarts, deadlines, and
the seeded CI fault drill from the issue's acceptance criteria."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.predictor import exact_search
from repro.serving import (DegradedServiceError, RetryPolicy, ShardedServer)
from repro.testbed.faults import FaultPlan
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")

#: Fast restarts so the crash drills do not sleep through real backoff.
FAST_RETRY = RetryPolicy(base=0.01, cap=0.05, max_restarts=3)


def make_corpus(n=40, dim=12, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim))


def make_queries(q=6, dim=12, seed=1):
    return make_corpus(n=q, dim=dim, seed=seed)


class TestRetryPolicy:
    def test_backoff_doubles_up_to_the_cap(self):
        policy = RetryPolicy(base=0.1, cap=0.5, max_restarts=5)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)   # capped
        assert policy.delay(10) == pytest.approx(0.5)


class TestScatterGather:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_merged_answer_is_bit_for_bit_single_process(self, num_shards):
        embeddings = make_corpus()
        queries = make_queries()
        want_i, want_d = exact_search(queries, embeddings, 5)
        with ShardedServer(embeddings, num_shards=num_shards) as server:
            result = server.search(queries, 5)
        assert not result.degraded
        assert result.coverage == 1.0
        assert result.missing == ()
        assert np.array_equal(result.indices, want_i)
        assert np.array_equal(result.distances, want_d)

    def test_shard_count_is_clamped_to_the_corpus(self):
        with ShardedServer(make_corpus(n=3), num_shards=16) as server:
            assert server.num_shards == 3
            result = server.search(make_queries(q=2), 2)
        assert not result.degraded

    def test_empty_corpus_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ShardedServer(np.zeros((0, 8)))

    def test_non_finite_queries_are_refused(self):
        with ShardedServer(make_corpus(), num_shards=2) as server:
            bad = make_queries()
            bad[0, 0] = np.nan
            with pytest.raises(ValueError, match="non-finite"):
                server.search(bad, 3)

    def test_stopped_server_refuses_requests(self):
        server = ShardedServer(make_corpus(), num_shards=2)
        server.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            server.search(make_queries(), 3)


class TestCrashRecovery:
    def test_killed_shard_is_restarted_and_the_request_resent(self):
        embeddings = make_corpus()
        queries = make_queries()
        want_i, _ = exact_search(queries, embeddings, 5)
        plan = FaultPlan(kill_at={1: 2})     # dies picking up request 2
        with ShardedServer(embeddings, num_shards=3, fault_plan=plan,
                           retry=FAST_RETRY) as server:
            for _ in range(4):               # the kill lands mid-stream
                result = server.search(queries, 5)
                assert not result.degraded   # revived + resent, not dropped
                assert np.array_equal(result.indices, want_i)
            assert server.restarts == {1: 1}
            assert server.failed == set()

    def test_restart_exhaustion_fails_the_shard_but_not_the_node(self):
        embeddings = make_corpus()
        queries = make_queries()
        plan = FaultPlan(kill_always=frozenset({0}))
        retry = RetryPolicy(base=0.01, cap=0.02, max_restarts=2)
        with ShardedServer(embeddings, num_shards=2, fault_plan=plan,
                           retry=retry) as server:
            result = server.search(queries, 5)
            assert result.degraded
            assert result.missing == (0,)
            assert server.failed == {0}
            assert server.restarts[0] == 2   # the full backoff budget
            # The healthy shard answers alone, exactly.
            survivors = server.specs[1].global_ids
            want_i, _ = exact_search(queries, embeddings[survivors], 5)
            assert np.array_equal(result.indices, survivors[want_i])
            # Later requests skip the failed shard without re-dialing it.
            again = server.search(queries, 5)
            assert again.degraded and again.missing == (0,)
            assert server.restarts[0] == 2

    def test_every_shard_failed_raises_degraded_service(self):
        plan = FaultPlan(kill_always=frozenset({0}))
        retry = RetryPolicy(base=0.01, cap=0.02, max_restarts=1)
        with ShardedServer(make_corpus(), num_shards=1, fault_plan=plan,
                           retry=retry) as server:
            with pytest.raises(DegradedServiceError):
                server.search(make_queries(), 5)

    def test_hung_worker_is_crashed_via_heartbeat_and_revived(self):
        embeddings = make_corpus()
        queries = make_queries()
        want_i, _ = exact_search(queries, embeddings, 5)
        plan = FaultPlan(slow_at={1: (1, 30.0)})   # far past the heartbeat
        with ShardedServer(embeddings, num_shards=2, fault_plan=plan,
                           retry=FAST_RETRY,
                           heartbeat_timeout=0.3) as server:
            result = server.search(queries, 5)     # no deadline: must heal
            assert not result.degraded
            assert np.array_equal(result.indices, want_i)
            assert server.restarts == {1: 1}


class TestMultiOutstanding:
    """The submit/collect gather: several requests in flight at once,
    responses routed home by request id."""

    def test_out_of_order_collect_merges_each_requests_own_answer(self):
        embeddings = make_corpus()
        q1, q2 = make_queries(seed=1), make_queries(seed=2)
        want1_i, want1_d = exact_search(q1, embeddings, 5)
        want2_i, want2_d = exact_search(q2, embeddings, 5)
        with ShardedServer(embeddings, num_shards=3) as server:
            r1 = server.submit(q1, 5)
            r2 = server.submit(q2, 5)
            # Collecting the *second* request first forces the gather to
            # route request 1's responses to its own map entry meanwhile.
            res2 = server.collect(r2)
            res1 = server.collect(r1)
        for result, (want_i, want_d) in ((res1, (want1_i, want1_d)),
                                         (res2, (want2_i, want2_d))):
            assert not result.degraded
            assert np.array_equal(result.indices, want_i)
            assert np.array_equal(result.distances, want_d)

    def test_collecting_a_request_twice_raises(self):
        with ShardedServer(make_corpus(), num_shards=2) as server:
            req = server.submit(make_queries(), 3)
            server.collect(req)
            with pytest.raises(KeyError, match="already collected"):
                server.collect(req)

    def test_straddling_slow_shard_never_misattributes(self):
        """Regression (multi-outstanding gather): a late answer from a
        deadline-cut request must not be merged into — or satisfy the
        pending set of — a *different* request submitted before the
        straggler woke up."""
        embeddings = make_corpus()
        q1, q2 = make_queries(seed=1), make_queries(seed=2)
        want2_i, want2_d = exact_search(q2, embeddings, 5)
        plan = FaultPlan(slow_at={1: (1, 0.6)})   # stall shard 1 on req 1
        with ShardedServer(embeddings, num_shards=2,
                           fault_plan=plan) as server:
            r1 = server.submit(q1, 5, deadline=0.15)
            r2 = server.submit(q2, 5)             # straddles the stall
            cut = server.collect(r1)
            assert cut.degraded and cut.missing == (1,)
            # Shard 1 wakes up, answers request 1 (now unroutable — it was
            # collected), then serves request 2 for real.  Request 2 must
            # get shard 1's answer to *its own* queries, bit-for-bit.
            fresh = server.collect(r2)
            assert not fresh.degraded
            assert np.array_equal(fresh.indices, want2_i)
            assert np.array_equal(fresh.distances, want2_d)


class TestDeadline:
    def test_slow_shard_is_cut_and_the_response_flagged(self):
        embeddings = make_corpus()
        queries = make_queries()
        plan = FaultPlan(slow_at={1: (1, 1.0)})
        with ShardedServer(embeddings, num_shards=2, fault_plan=plan) as server:
            result = server.search(queries, 5, deadline=0.25)
            assert result.degraded
            assert result.missing == (1,)
            assert result.shard_coverage == {0: 1.0, 1: 0.0}
            expected = len(server.specs[0].global_ids) / len(embeddings)
            assert result.coverage == pytest.approx(expected)
            survivors = server.specs[0].global_ids
            want_i, _ = exact_search(queries, embeddings[survivors], 5)
            assert np.array_equal(result.indices, survivors[want_i])

    def test_late_answer_from_a_cut_shard_is_never_merged_later(self):
        embeddings = make_corpus()
        queries = make_queries()
        want_i, want_d = exact_search(queries, embeddings, 5)
        plan = FaultPlan(slow_at={1: (1, 0.6)})
        with ShardedServer(embeddings, num_shards=2, fault_plan=plan) as server:
            cut = server.search(queries, 5, deadline=0.15)
            assert cut.degraded
            # The next (undeadlined) request must discard the stale answer
            # to request 1 and merge only fresh per-shard results.
            fresh = server.search(queries, 5)
            assert not fresh.degraded
            assert np.array_equal(fresh.indices, want_i)
            assert np.array_equal(fresh.distances, want_d)


class TestAcceptanceFaultDrill:
    """The issue's CI drill: one shard SIGKILLed mid-stream, another slowed
    past its deadline, five queries, nothing dropped, bit-for-bit
    non-degraded answers — twice over, deterministically."""

    N, DIM, K, QUERIES = 60, 12, 5, 5

    def run_drill(self):
        embeddings = make_corpus(n=self.N, dim=self.DIM, seed=7)
        queries = make_queries(q=3, dim=self.DIM, seed=8)
        plan = FaultPlan(
            seed=11,
            kill_at={1: 2},                 # SIGKILL shard 1 at request 2
            slow_at={2: (5, 1.2)},          # stall shard 2 at request 5
        )
        outcomes = []
        with ShardedServer(embeddings, num_shards=3, fault_plan=plan,
                           retry=FAST_RETRY) as server:
            for request in range(1, self.QUERIES + 1):
                # Only the final request carries a tight budget; the kill
                # recovery happens under a generous one.
                deadline = 0.3 if request == self.QUERIES else 30.0
                result = server.search(queries, self.K, deadline=deadline)
                outcomes.append(result)
            restarts = dict(server.restarts)
            shard_members = [spec.global_ids for spec in server.specs]
        return embeddings, queries, outcomes, restarts, shard_members

    def test_drill(self):
        embeddings, queries, outcomes, restarts, members = self.run_drill()
        want_i, want_d = exact_search(queries, embeddings, self.K)

        # No query dropped: every request produced a merged answer.
        assert len(outcomes) == self.QUERIES

        # The killed shard was restarted within the backoff budget.
        assert restarts == {1: 1}

        # Requests 1-4 (including the one that rode through the crash) are
        # complete and bit-for-bit the single-process answer.
        for result in outcomes[:-1]:
            assert not result.degraded
            assert result.coverage == 1.0
            assert np.array_equal(result.indices, want_i)
            assert np.array_equal(result.distances, want_d)

        # Request 5 lost the slowed shard: flagged, with per-shard coverage.
        last = outcomes[-1]
        assert last.degraded
        assert last.missing == (2,)
        assert last.shard_coverage == {0: 1.0, 1: 1.0, 2: 0.0}
        expected = 1.0 - len(members[2]) / self.N
        assert last.coverage == pytest.approx(expected)
        survivors = np.sort(np.concatenate(members[:2]))
        sub_i, _ = exact_search(queries, embeddings[survivors], self.K)
        assert np.array_equal(last.indices, survivors[sub_i])

    def test_drill_is_deterministic(self):
        _, _, first, restarts_a, _ = self.run_drill()
        _, _, second, restarts_b, _ = self.run_drill()
        assert restarts_a == restarts_b
        for a, b in zip(first, second):
            assert a.degraded == b.degraded
            assert a.missing == b.missing
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.distances, b.distances)


@pytest.fixture(scope="module")
def fitted_advisor():
    rng = np.random.default_rng(3)
    graphs, labels = [], []
    for i in range(16):
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, 10)) * 0.3
        vertices[:, 0] += float(i % 3)
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.4
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        labels.append(DatasetLabel(MODELS, rng.uniform(1, 9, 3),
                                   rng.uniform(0.001, 0.01, 3)))
    advisor = AutoCE(AutoCEConfig(
        hidden_dim=16, embedding_dim=8, use_incremental=False,
        dml=DMLConfig(epochs=4, batch_size=8, seed=0), seed=0))
    advisor.fit_graphs(graphs, labels)
    return advisor, graphs


class TestShardedRecommendations:
    def test_matches_the_single_process_advisor(self, fitted_advisor):
        advisor, graphs = fitted_advisor
        want = advisor.recommend_batch(graphs[:5], accuracy_weight=0.8)
        with ShardedServer.from_advisor(advisor, num_shards=3) as server:
            got = server.recommend_batch(graphs[:5], accuracy_weight=0.8)
        assert [rec.model for rec in got] == [rec.model for rec in want]
        for mine, theirs in zip(got, want):
            assert np.array_equal(mine.neighbor_indices,
                                  theirs.neighbor_indices)
            assert np.array_equal(mine.score_vector, theirs.score_vector)
            assert not mine.degraded
            assert mine.coverage == 1.0

    def test_poisoned_embedding_batch_is_refused(self, fitted_advisor):
        advisor, graphs = fitted_advisor
        plan = FaultPlan(seed=5, poison_embedding_at=frozenset({2}))
        with ShardedServer.from_advisor(advisor, num_shards=2,
                                        fault_plan=plan) as server:
            first = server.recommend_batch(graphs[:4])
            assert len(first) == 4           # batch 1 is clean
            with pytest.raises(ValueError, match="non-finite"):
                server.recommend_batch(graphs[4:8])

    def test_from_advisor_requires_a_fitted_rcs(self):
        with pytest.raises(ValueError, match="RCS"):
            ShardedServer.from_advisor(AutoCE(AutoCEConfig()))
