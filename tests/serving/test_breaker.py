"""The tier breaker's state machine, driven observation by observation."""

import pytest

from repro.serving import BreakerConfig, ShardHealth, TierBreaker

LADDER = ("pq", "int8", "exact")

GOOD = ShardHealth()
BAD = ShardHealth(fallback_fraction=1.0)


def make_breaker(**overrides):
    config = BreakerConfig(**{"failure_threshold": 2, "cooldown": 3,
                              "promote_threshold": 2, **overrides})
    return TierBreaker(LADDER, config)


class TestHealthRule:
    def test_default_observation_is_healthy(self):
        assert BreakerConfig().is_healthy(ShardHealth())

    @pytest.mark.parametrize("health", [
        ShardHealth(errors=1),
        ShardHealth(fallback_fraction=0.9),
        ShardHealth(recall_probe=0.5),
        ShardHealth(drift_events=5),
    ])
    def test_each_observable_can_fail_alone(self, health):
        assert not BreakerConfig().is_healthy(health)

    def test_missing_recall_probe_is_not_a_failure(self):
        assert BreakerConfig().is_healthy(ShardHealth(recall_probe=None))


class TestDemotion:
    def test_starts_at_the_top_tier_closed(self):
        breaker = make_breaker()
        assert breaker.tier == "pq"
        assert breaker.state == "closed"
        assert not breaker.degraded

    def test_consecutive_failures_demote_one_rung(self):
        breaker = make_breaker()
        breaker.observe(BAD)
        assert breaker.tier == "pq"       # one failure is not enough
        breaker.observe(BAD)
        assert breaker.tier == "int8"
        assert breaker.state == "open"
        assert breaker.degraded
        assert breaker.demotions == 1

    def test_interleaved_success_resets_the_failure_count(self):
        breaker = make_breaker()
        for _ in range(5):
            breaker.observe(BAD)
            breaker.observe(GOOD)
        assert breaker.tier == "pq"
        assert breaker.demotions == 0

    def test_keeps_demoting_down_to_the_exact_floor(self):
        breaker = make_breaker()
        for _ in range(10):
            breaker.observe(BAD)
        assert breaker.tier == "exact"
        assert breaker.demotions == 2

    def test_the_floor_cannot_be_demoted_past(self):
        breaker = TierBreaker(("exact",), BreakerConfig(failure_threshold=1))
        for _ in range(5):
            breaker.observe(BAD)
        assert breaker.tier == "exact"
        assert breaker.demotions == 0

    def test_empty_ladder_is_rejected(self):
        with pytest.raises(ValueError):
            TierBreaker(())


class TestRepromotion:
    def demoted(self):
        breaker = make_breaker()
        breaker.observe(BAD)
        breaker.observe(BAD)
        assert breaker.tier == "int8"
        return breaker

    def test_cooldown_then_probes_then_promotion(self):
        breaker = self.demoted()
        for _ in range(3):                  # cooldown at the demoted tier
            breaker.observe(GOOD)
        assert breaker.state == "half_open"
        assert breaker.tier == "pq"         # probes serve the promoted tier
        breaker.observe(GOOD)
        breaker.observe(GOOD)
        assert breaker.tier == "pq"
        assert breaker.state == "closed"
        assert breaker.promotions == 1
        assert not breaker.degraded

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker = self.demoted()
        for _ in range(3):
            breaker.observe(GOOD)
        assert breaker.state == "half_open"
        breaker.observe(BAD)                # the probe fails
        assert breaker.state == "open"
        assert breaker.tier == "int8"
        assert breaker.promotions == 0
        # The full cooldown is owed again before the next probe window.
        breaker.observe(GOOD)
        breaker.observe(GOOD)
        assert breaker.state == "open"
        breaker.observe(GOOD)
        assert breaker.state == "half_open"

    def test_unhealthy_while_open_keeps_demoting(self):
        breaker = self.demoted()
        breaker.observe(BAD)
        breaker.observe(BAD)
        assert breaker.tier == "exact"
        assert breaker.state == "open"

    def test_two_rung_recovery_passes_through_the_middle_tier(self):
        breaker = make_breaker()
        for _ in range(4):
            breaker.observe(BAD)
        assert breaker.tier == "exact"
        # exact -> int8
        for _ in range(3):
            breaker.observe(GOOD)
        breaker.observe(GOOD)
        breaker.observe(GOOD)
        assert breaker.tier == "int8"
        assert breaker.state == "open"      # still below the top rung
        # int8 -> pq
        for _ in range(3):
            breaker.observe(GOOD)
        breaker.observe(GOOD)
        breaker.observe(GOOD)
        assert breaker.tier == "pq"
        assert breaker.state == "closed"
        assert breaker.promotions == 2
