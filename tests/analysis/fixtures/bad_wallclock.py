"""Known-bad REP002 fixture (not an allowlisted timing module)."""

import time
from datetime import datetime


def stamp_cache_entry(key: str) -> tuple[str, float]:
    return key, time.time()                    # line 8: wall-clock read


def label_run() -> str:
    return datetime.now().isoformat()          # line 12: datetime.now
