"""Known-bad REP004 fixture: unpicklable process targets and payloads."""

import multiprocessing as mp


def serve(shard: int) -> None:
    pass


def spawn_all(queue: "mp.Queue[object]") -> None:
    def local_worker() -> None:
        pass

    mp.Process(target=lambda: serve(0)).start()    # line 14: lambda target
    mp.Process(target=local_worker).start()        # line 15: nested function
    queue.put(lambda: serve(1))                    # line 16: lambda payload
