"""Known-good REP004 fixture: module-level target, dataclass payloads."""

import multiprocessing as mp
from dataclasses import dataclass


@dataclass
class Message:
    req_id: int


def worker_main(req_id: int) -> None:
    pass


def spawn(queue: "mp.Queue[Message]") -> None:
    mp.Process(target=worker_main, args=(3,)).start()
    queue.put(Message(req_id=3))
