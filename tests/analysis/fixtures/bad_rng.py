"""Known-bad REP001 fixture.  Line numbers are asserted by the tests —
keep the offending calls exactly where they are (or update the tests)."""

import random

import numpy as np

rng = np.random.default_rng()                  # line 8: unseeded default_rng
entropy = np.random.SeedSequence()             # line 9: unseeded SeedSequence
noise = np.random.standard_normal(8)           # line 10: hidden global state
jitter = random.random()                       # line 11: stdlib random
