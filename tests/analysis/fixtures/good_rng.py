"""Known-good REP001 fixture: every draw flows from an explicit seed."""

import numpy as np

rng = np.random.default_rng(7)
child = np.random.default_rng(np.random.SeedSequence(1234))
noise = rng.standard_normal(8)
pick = rng.integers(0, 10)
