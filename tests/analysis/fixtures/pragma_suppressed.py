"""Pragma fixture: the same violations as bad_rng, each suppressed."""

import numpy as np

rng = np.random.default_rng()      # repro: allow[REP001]
noise = np.random.standard_normal(8)  # repro: allow[REP001, REP002]
star = np.random.standard_normal(4)   # repro: allow[*]
unsuppressed = np.random.default_rng()   # line 8: pragma-free, still fires
