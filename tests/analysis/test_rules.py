"""Per-rule coverage: known-bad snippets flag (with the right anchors),
known-good snippets pass, and the scoping/allowlist escape hatches hold."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import ModuleSource, run_check
from repro.analysis.rules import all_rules, rule_by_id
from repro.analysis.rules.rep001_rng import UnseededRngRule
from repro.analysis.rules.rep002_wallclock import WallclockRule
from repro.analysis.rules.rep003_dtype import DtypePromotionRule
from repro.analysis.rules.rep004_fork import ForkSafetyRule
from repro.analysis.rules.rep005_protocol import (ProtocolDriftRule,
                                                  ProtocolSpec)
from repro.analysis.rules.rep006_shim import ShimGuardRule
from repro.analysis.engine import Project

FIXTURES = Path(__file__).parent / "fixtures"


def check_source(rule, source: str, module_rel: str | None = None):
    module = ModuleSource.from_text(textwrap.dedent(source),
                                    module_rel=module_rel)
    return list(rule.check_module(module))


class TestRegistry:
    def test_six_rules_in_id_order(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == ["REP001", "REP002", "REP003", "REP004", "REP005",
                       "REP006"]

    def test_rule_by_id_is_case_insensitive(self):
        assert rule_by_id("rep003").id == "REP003"
        assert rule_by_id("REP404") is None

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            text = rule.explain()
            assert rule.id in text
            assert "Contract" in text and "Suppression" in text


class TestRep001:
    def test_bad_fixture_flags_each_call_on_its_line(self):
        report = run_check([FIXTURES / "bad_rng.py"], [UnseededRngRule()])
        assert [f.line for f in report.findings] == [8, 9, 10, 11]
        assert {f.rule for f in report.findings} == {"REP001"}
        assert {f.severity for f in report.findings} == {"error"}

    def test_good_fixture_is_clean(self):
        report = run_check([FIXTURES / "good_rng.py"], [UnseededRngRule()])
        assert report.findings == []

    def test_seeded_calls_pass(self):
        assert check_source(UnseededRngRule(), """\
            import numpy as np
            rng = np.random.default_rng(3)
            seq = np.random.SeedSequence(99)
            gen = np.random.Generator(np.random.PCG64(5))
            """) == []

    def test_import_alias_is_resolved(self):
        findings = check_source(UnseededRngRule(), """\
            import numpy.random as nprand
            rng = nprand.default_rng()
            """)
        assert len(findings) == 1 and findings[0].line == 2

    def test_local_name_shadowing_random_is_ignored(self):
        # `random` here is a local callable, not the stdlib module.
        assert check_source(UnseededRngRule(), """\
            def random():
                return 4
            value = random()
            """) == []


class TestRep002:
    def test_bad_fixture_flags_both_reads(self):
        report = run_check([FIXTURES / "bad_wallclock.py"],
                           [WallclockRule()])
        assert [f.line for f in report.findings] == [8, 12]
        assert {f.rule for f in report.findings} == {"REP002"}

    def test_allowlisted_module_is_exempt(self):
        source = """\
            import time
            start = time.perf_counter()
            """
        assert check_source(WallclockRule(), source,
                            module_rel="utils/timing.py") == []
        assert len(check_source(WallclockRule(), source,
                                module_rel="core/predictor.py")) == 1

    def test_from_import_alias_is_resolved(self):
        findings = check_source(WallclockRule(), """\
            from time import perf_counter as tick
            start = tick()
            """)
        assert len(findings) == 1 and "time.perf_counter" in findings[0].message


class TestRep003:
    REL = "serving/sharding.py"

    def test_ctor_without_dtype_flags(self):
        findings = check_source(DtypePromotionRule(), """\
            import numpy as np
            pool = np.zeros(16)
            """, module_rel=self.REL)
        assert len(findings) == 1
        assert "np.zeros" in findings[0].message

    def test_explicit_dtype_passes(self):
        assert check_source(DtypePromotionRule(), """\
            import numpy as np
            a = np.zeros(16, dtype=np.float64)
            b = np.empty((2, 0), dtype=queries.dtype)
            c = np.full(4, 0.5, dtype=np.float32)
            d = np.asarray(rows)          # tier-preserving: exempt
            e = np.zeros_like(rows)       # not a defaulting constructor
            """, module_rel=self.REL) == []

    def test_bare_float_spellings_flag(self):
        findings = check_source(DtypePromotionRule(), """\
            import numpy as np
            a = np.array(rows, dtype=float)
            b = rows.astype(float)
            c = np.float64(radius)
            """, module_rel=self.REL)
        assert [f.line for f in findings] == [2, 3, 4]

    def test_out_of_scope_modules_are_exempt(self):
        source = """\
            import numpy as np
            pool = np.zeros(16)
            """
        assert check_source(DtypePromotionRule(), source,
                            module_rel="core/graph.py") == []
        assert check_source(DtypePromotionRule(), source,
                            module_rel=None) == []
        assert len(check_source(DtypePromotionRule(), source,
                                module_rel="core/predictor.py")) == 1


class TestRep004:
    def test_bad_fixture_flags_targets_and_payload(self):
        report = run_check([FIXTURES / "bad_fork.py"], [ForkSafetyRule()])
        assert [f.line for f in report.findings] == [14, 15, 16]
        messages = " ".join(f.message for f in report.findings)
        assert "lambda as a Process target" in messages
        assert "nested function" in messages
        assert "lambda placed on a queue" in messages

    def test_good_fixture_is_clean(self):
        report = run_check([FIXTURES / "good_fork.py"], [ForkSafetyRule()])
        assert report.findings == []

    def test_bound_method_target_flags(self):
        findings = check_source(ForkSafetyRule(), """\
            import multiprocessing as mp
            class Server:
                def start(self):
                    mp.Process(target=self.loop).start()
            """)
        assert len(findings) == 1
        assert "bound method" in findings[0].message

    def test_worker_module_global_state_flags(self):
        source = """\
            def handle(msg):
                global served
                served += 1
            """
        findings = check_source(ForkSafetyRule(), source,
                                module_rel="serving/worker.py")
        assert len(findings) == 1 and "global served" in findings[0].message
        assert check_source(ForkSafetyRule(), source,
                            module_rel="serving/other.py") == []


class TestRep005:
    DECL = """\
        from dataclasses import dataclass, field
        @dataclass
        class ShardRequest:
            req_id: int
            queries: object
            k: int = 5
        """

    def run_protocol(self, producer: str, consumer: str | None = None):
        worker_source = (textwrap.dedent(self.DECL)
                         + textwrap.dedent(consumer or ""))
        modules = [
            ModuleSource.from_text(worker_source,
                                   path="worker.py",
                                   module_rel="serving/worker.py"),
            ModuleSource.from_text(textwrap.dedent(producer),
                                   path="supervisor.py",
                                   module_rel="serving/supervisor.py"),
        ]
        rule = ProtocolDriftRule(protocols=(
            ProtocolSpec(message="ShardRequest",
                         declared_in="serving/worker.py",
                         producers=("serving/supervisor.py",),
                         consumers=("serving/worker.py",)),))
        return list(rule.finalize(Project(modules)))

    def test_consistent_sides_pass(self):
        assert self.run_protocol("""\
            from .worker import ShardRequest
            req = ShardRequest(req_id=1, queries=q, k=3)
            """) == []

    def test_unknown_field_flags(self):
        findings = self.run_protocol("""\
            from .worker import ShardRequest
            req = ShardRequest(req_id=1, queries=q, deadline=2.0)
            """)
        assert len(findings) == 1 and "deadline" in findings[0].message

    def test_missing_required_field_flags(self):
        findings = self.run_protocol("""\
            from .worker import ShardRequest
            req = ShardRequest(req_id=1)
            """)
        assert len(findings) == 1 and "queries" in findings[0].message

    def test_consumer_reading_undeclared_field_flags(self):
        findings = self.run_protocol(
            "x = 1\n",
            consumer="""\
            def serve(request_queue):
                msg = request_queue.get()
                return msg.queries, msg.deadline
            """)
        assert len(findings) == 1
        assert "msg.deadline" in findings[0].message

    def test_current_tree_protocol_is_consistent(self):
        report = run_check([Path("src/repro/serving")],
                           [ProtocolDriftRule()])
        assert report.findings == []


class TestRep006:
    SHIM_OK = """\
        '''A re-exporting shim.'''
        from .serving.kernels import exact_search
        __all__ = ["exact_search"]
        """

    def test_clean_shim_passes(self):
        assert check_source(ShimGuardRule(), self.SHIM_OK,
                            module_rel="core/predictor.py") == []

    def test_out_of_scope_module_is_ignored(self):
        source = "def helper():\n    return 1\n"
        assert check_source(ShimGuardRule(), source,
                            module_rel="core/serving/kernels.py") == []

    def test_function_regrowth_flags(self):
        findings = check_source(ShimGuardRule(), """\
            from .serving.kernels import exact_search

            def helper(x):
                return exact_search(x, x, 1)
            """, module_rel="core/predictor.py")
        assert len(findings) == 1
        assert "re-exporting shim" in findings[0].message

    def test_class_regrowth_flags(self):
        findings = check_source(ShimGuardRule(), """\
            class QuantizedStore:
                pass
            """, module_rel="core/predictor.py")
        assert len(findings) == 1

    def test_line_budget_flags(self):
        source = "import numpy as np\n" * 120
        findings = check_source(ShimGuardRule(), source,
                                module_rel="core/predictor.py")
        assert len(findings) == 1 and "100" in findings[0].message

    def test_current_shim_is_clean(self):
        report = run_check([Path("src/repro/core/predictor.py")],
                           [ShimGuardRule()])
        assert report.findings == []
