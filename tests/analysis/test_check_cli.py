"""The ``repro check`` command: exit codes, reports, the baseline ratchet,
and the CI acceptance drill (a seeded-bad file must fail the gate)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]

BAD_SOURCE = ("import numpy as np\n"
              "rng = np.random.default_rng()\n")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\nrng = np.random.default_rng(3)\n")
        assert main(["check", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE)
        assert main(["check", str(bad),
                     "--baseline", str(tmp_path / "none.json")]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "1 new" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "absent")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_explain_rule_exits_two(self, capsys):
        assert main(["check", "--explain", "REP404"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["check", str(clean), "--baseline", str(bad)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestExplainAndList:
    def test_explain_prints_the_contract(self, capsys):
        assert main(["check", "--explain", "rep001"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "Contract" in out and "allow[REP001]" in out

    def test_list_rules_names_all_six(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                        "REP006"):
            assert rule_id in out


class TestJsonReport:
    def test_json_report_is_written_and_stable(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE)
        report_a = tmp_path / "a.json"
        report_b = tmp_path / "b.json"
        baseline = str(tmp_path / "none.json")
        main(["check", str(bad), "--baseline", baseline,
              "--json", str(report_a)])
        main(["check", str(bad), "--baseline", baseline,
              "--json", str(report_b)])
        assert report_a.read_text() == report_b.read_text()
        payload = json.loads(report_a.read_text())
        assert payload["counts"]["new"] == 1
        [entry] = payload["findings"]
        assert entry["rule"] == "REP001" and entry["new"] is True

    def test_json_dash_writes_stdout(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["check", str(clean), "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"findings": []' in out


class TestBaselineRatchet:
    def test_update_baseline_then_clean_then_ratchet(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE)
        baseline = tmp_path / "baseline.json"

        # Grandfather the finding, then the same tree is clean.
        assert main(["check", str(bad), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["check", str(bad), "--baseline", str(baseline),
                     "--fail-on-new"]) == 0

        # Fixing the file strands the entry: plain check still passes but
        # reports it stale; --fail-on-new enforces the ratchet.
        bad.write_text("import numpy as np\nrng = np.random.default_rng(3)\n")
        assert main(["check", str(bad), "--baseline", str(baseline)]) == 0
        assert "stale" in capsys.readouterr().out
        assert main(["check", str(bad), "--baseline", str(baseline),
                     "--fail-on-new"]) == 1

    def test_new_finding_fails_even_with_baseline(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        main(["check", str(bad), "--baseline", str(baseline),
              "--update-baseline"])
        bad.write_text(BAD_SOURCE + "more = np.random.standard_normal(4)\n")
        assert main(["check", str(bad), "--baseline", str(baseline)]) == 1


class TestAcceptance:
    """The merged-tree gate exactly as CI runs it."""

    def test_src_repro_is_clean_under_fail_on_new(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["check", "src/repro", "--fail-on-new"]) == 0

    def test_committed_baseline_has_no_error_tier_entries(self):
        data = json.loads(
            (REPO_ROOT / "analysis" / "baseline.json").read_text())
        for key in data["entries"]:
            assert not key.startswith(("REP001::", "REP004::")), (
                "determinism/fork-safety errors must be fixed, "
                f"never baselined: {key}")

    def test_seeded_bad_fixture_fails_the_gate(self, tmp_path, monkeypatch):
        # Drop an unseeded-RNG file into a copy of the scanned tree and
        # run the exact CI command against the committed baseline.
        monkeypatch.chdir(REPO_ROOT)
        seeded = tmp_path / "seeded_bad.py"
        seeded.write_text(BAD_SOURCE)
        assert main(["check", "src/repro", str(seeded),
                     "--fail-on-new"]) == 1
