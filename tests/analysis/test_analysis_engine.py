"""Engine-level contracts: pragmas, the baseline ratchet, and the
analyzer's own determinism (two runs must emit byte-identical reports)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, ModuleSource, run_check
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import all_rules
from repro.analysis.rules.rep001_rng import UnseededRngRule

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src" / "repro"


def finding(rule="REP001", path="a.py", line=3, message="msg"):
    return Finding(rule=rule, path=path, line=line, col=0,
                   severity="error", message=message)


class TestPragmas:
    def test_pragma_lines_suppress_and_count(self):
        report = run_check([FIXTURES / "pragma_suppressed.py"],
                           [UnseededRngRule()])
        # Three suppressed (one by allow[REP001], one by a comma list, one
        # by allow[*]); the pragma-free line 8 still fires.
        assert report.suppressed == 3
        assert [f.line for f in report.findings] == [8]

    def test_pragma_only_covers_its_own_line(self):
        module = ModuleSource.from_text(
            "import numpy as np\n"
            "a = np.random.default_rng()  # repro: allow[REP001]\n"
            "b = np.random.default_rng()\n")
        assert module.allows("REP001", 2)
        assert not module.allows("REP001", 3)
        assert not module.allows("REP002", 2)

    def test_star_pragma_covers_every_rule(self):
        module = ModuleSource.from_text(
            "x = 1  # repro: allow[*]\n")
        assert module.allows("REP001", 1) and module.allows("REP005", 1)


class TestParseErrors:
    def test_syntax_error_becomes_a_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        good = tmp_path / "fine.py"
        good.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        report = run_check([tmp_path], [UnseededRngRule()], root=tmp_path)
        rules = [f.rule for f in report.findings]
        # The broken file reports PARSE; the parseable one is still checked.
        assert rules == ["PARSE", "REP001"]


class TestBaseline:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline.from_findings(
            [finding(), finding(), finding(message="other")])
        original.save(path)
        assert Baseline.load(path).entries == original.entries
        assert original.entries["REP001::a.py::msg"] == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('["not", "a", "baseline"]')
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_diff_splits_new_baselined_stale(self):
        baseline = Baseline(entries={"REP001::a.py::msg": 1,
                                     "REP001::gone.py::old": 2})
        diff = baseline.diff([finding(line=3), finding(line=9),
                              finding(path="b.py")])
        # One of the two a.py findings is covered, the surplus one and the
        # b.py finding are new, and the gone.py entry is stale.
        assert [f.sort_key for f in diff.baselined] == [
            finding(line=3).sort_key]
        assert sorted(f.path for f in diff.new) == ["a.py", "b.py"]
        assert diff.stale == {"REP001::gone.py::old": 2}

    def test_baseline_key_ignores_line_numbers(self):
        assert (finding(line=3).baseline_key
                == finding(line=300).baseline_key)

    def test_saved_file_is_sorted_and_versioned(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline(entries={"b::x::m": 1, "a::y::m": 2}).save(path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert list(data["entries"]) == ["a::y::m", "b::x::m"]


class TestDeterminism:
    def test_two_runs_over_src_repro_are_identical(self):
        first = run_check([SRC], all_rules())
        second = run_check([SRC], all_rules())
        assert first.to_dict() == second.to_dict()
        baseline = Baseline()
        assert (render_text(first, baseline.diff(first.findings), "b.json")
                == render_text(second, baseline.diff(second.findings),
                               "b.json"))
        assert (render_json(first, baseline.diff(first.findings), "b.json")
                == render_json(second, baseline.diff(second.findings),
                               "b.json"))

    def test_findings_come_out_sorted(self):
        report = run_check([FIXTURES], all_rules())
        keys = [f.sort_key for f in report.findings]
        assert keys == sorted(keys)

    def test_file_walk_is_sorted_and_deduplicated(self):
        from repro.analysis.engine import iter_python_files
        twice = iter_python_files([FIXTURES, FIXTURES / "bad_rng.py"])
        assert len(twice) == len(set(twice))
        assert twice == iter_python_files([FIXTURES])
