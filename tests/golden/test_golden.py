"""Golden-file regression: frozen corpus, frozen top-3 recommendations.

``corpus.npz`` freezes a small labeled corpus and a query set; the JSON
golden file freezes the top-3 recommendation ranking per query for each
serving path (exact / sign-hash / E2LSH / int8-quantized / PQ, plus the
LSH families with quantized re-rank pools and the IVF-partitioned
quantized tiers).  Any kernel change that
silently moves a ranking — featurization, the GIN forward, the DML loss,
a distance kernel, an index probe, a codebook — fails the diff here even
when every behavioral test still passes.

After an *intentional* ranking change, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

and review the golden diff like any other code change.  The corpus file is
only written when missing (``.npz`` bytes are not reproducible; the
expectations are), so the inputs stay frozen while the expectations regen.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.predictor import (ANNConfig, E2LSHConfig, QuantizationConfig)
from repro.testbed.scores import DatasetLabel

GOLDEN_DIR = Path(__file__).resolve().parent
CORPUS_FILE = GOLDEN_DIR / "corpus.npz"
EXPECTED_FILE = GOLDEN_DIR / "expected_top3.json"

MODELS = ("MSCN", "DeepDB", "BayesCard", "NeuroCard")
NUM_MEMBERS = 48
NUM_QUERIES = 12
TOP = 3
WEIGHT = 0.9


def _random_graph(rng: np.random.Generator, name: str, kind: int,
                  dim: int = 12) -> FeatureGraph:
    tables = int(rng.integers(1, 4))
    vertices = rng.normal(size=(tables, dim)) * 0.3
    vertices[:, 0] += {0: 2.0, 1: -2.0, 2: 0.0, 3: 4.0}[kind]
    vertices[:, 1] += {0: 0.0, 1: 1.5, 2: -1.5, 3: 1.0}[kind]
    edges = np.zeros((tables, tables))
    for t in range(1, tables):
        edges[t - 1, t] = float(rng.uniform(0.2, 0.9))
    return FeatureGraph(name, vertices, edges)


def build_frozen_corpus() -> dict[str, np.ndarray]:
    """The deterministic generator behind ``corpus.npz`` (seed-pinned)."""
    rng = np.random.default_rng(20260727)
    arrays: dict[str, np.ndarray] = {}
    qerror = np.empty((NUM_MEMBERS, len(MODELS)))
    latency = np.empty((NUM_MEMBERS, len(MODELS)))
    base_qerror = {0: [1.1, 3.0, 6.0, 9.0], 1: [9.0, 1.1, 3.0, 6.0],
                   2: [6.0, 9.0, 1.1, 3.0], 3: [3.0, 6.0, 9.0, 1.1]}
    for i in range(NUM_MEMBERS):
        kind = i % 4
        graph = _random_graph(rng, f"member{i}", kind)
        arrays[f"graph_{i}_vertices"] = graph.vertices
        arrays[f"graph_{i}_edges"] = graph.edges
        qerror[i] = (np.asarray(base_qerror[kind])
                     * rng.uniform(0.95, 1.05, len(MODELS)))
        latency[i] = rng.uniform(0.001, 0.01, len(MODELS))
    arrays["qerror"] = qerror
    arrays["latency"] = latency
    for j in range(NUM_QUERIES):
        graph = _random_graph(rng, f"query{j}", j % 4)
        arrays[f"query_{j}_vertices"] = graph.vertices
        arrays[f"query_{j}_edges"] = graph.edges
    return arrays


def load_corpus() -> tuple[list[FeatureGraph], list[DatasetLabel],
                           list[FeatureGraph]]:
    with np.load(CORPUS_FILE) as data:
        graphs = [FeatureGraph(f"member{i}", data[f"graph_{i}_vertices"],
                               data[f"graph_{i}_edges"])
                  for i in range(NUM_MEMBERS)]
        labels = [DatasetLabel(MODELS, data["qerror"][i], data["latency"][i])
                  for i in range(NUM_MEMBERS)]
        queries = [FeatureGraph(f"query{j}", data[f"query_{j}_vertices"],
                                data[f"query_{j}_edges"])
                   for j in range(NUM_QUERIES)]
    return graphs, labels, queries


def _sign_ann() -> ANNConfig:
    return ANNConfig(threshold=8, family="sign", min_candidates=4,
                     num_probes=8, seed=0)


def _e2lsh_ann() -> ANNConfig:
    return ANNConfig(threshold=8, family="e2lsh", seed=0,
                     e2lsh=E2LSHConfig(seed=0, num_tables=12, num_probes=32,
                                       min_candidates=4))


def _int8_quant(overfetch: int = 4) -> QuantizationConfig:
    return QuantizationConfig(enabled=True, mode="int8", min_size=8,
                              overfetch=overfetch)


def _pq_quant(overfetch: int = 4) -> QuantizationConfig:
    return QuantizationConfig(enabled=True, mode="pq", num_subspaces=4,
                              codebook_size=16, min_size=8,
                              overfetch=overfetch)


def _ivf_int8_quant() -> QuantizationConfig:
    # nprobe < cells so the probed scan genuinely engages on the frozen
    # 48-member corpus (nprobe >= cells would delegate to the flat tier).
    return QuantizationConfig(enabled=True, mode="int8", min_size=8,
                              overfetch=4, ivf=True, ivf_cells=4, nprobe=2,
                              ivf_min_size=8)


def _ivf_pq_quant() -> QuantizationConfig:
    return QuantizationConfig(enabled=True, mode="pq", num_subspaces=4,
                              codebook_size=16, min_size=8, overfetch=4,
                              ivf=True, ivf_cells=4, nprobe=2,
                              ivf_min_size=8)


def path_config(path: str) -> AutoCEConfig:
    config = AutoCEConfig(hidden_dim=16, embedding_dim=8, knn_k=3,
                          use_incremental=False,
                          dml=DMLConfig(epochs=4, batch_size=12), seed=0)
    if path == "exact":
        config.ann = ANNConfig(threshold=0)
    elif path == "sign":
        config.ann = _sign_ann()
    elif path == "e2lsh":
        config.ann = _e2lsh_ann()
    elif path == "quantized":
        config.ann = ANNConfig(threshold=0)
        config.quantization = _int8_quant()
    elif path == "pq":
        config.ann = ANNConfig(threshold=0)
        config.quantization = _pq_quant()
    elif path == "sign-int8":
        # Overfetch 2 keeps the code-space pool narrowing engaged on the
        # frozen 48-member corpus (pools must exceed k · overfetch).
        config.ann = _sign_ann()
        config.quantization = _int8_quant(overfetch=2)
    elif path == "e2lsh-int8":
        config.ann = _e2lsh_ann()
        config.quantization = _int8_quant(overfetch=2)
    elif path == "e2lsh-pq":
        config.ann = _e2lsh_ann()
        config.quantization = _pq_quant(overfetch=2)
    elif path == "ivf-int8":
        config.ann = ANNConfig(threshold=0)
        config.quantization = _ivf_int8_quant()
    elif path == "ivf-pq":
        config.ann = ANNConfig(threshold=0)
        config.quantization = _ivf_pq_quant()
    else:
        raise ValueError(path)
    return config


PATHS = ("exact", "sign", "e2lsh", "quantized", "pq", "sign-int8",
         "e2lsh-int8", "e2lsh-pq", "ivf-int8", "ivf-pq")


def compute_top3(path: str) -> list[list[str]]:
    graphs, labels, queries = load_corpus()
    advisor = AutoCE(path_config(path))
    advisor.fit(graphs, labels)
    recs = advisor.recommend_batch(queries, WEIGHT)
    return [[name for name, _ in rec.ranking()[:TOP]] for rec in recs]


@pytest.fixture(scope="module", autouse=True)
def frozen_corpus_file(request):
    """The corpus file is frozen; materialize it only if it is missing."""
    if not CORPUS_FILE.exists():
        if not request.config.getoption("--regen-golden"):
            pytest.fail(f"{CORPUS_FILE} is missing; regenerate it with "
                        "--regen-golden and commit it")
        np.savez_compressed(CORPUS_FILE, **build_frozen_corpus())


class TestGoldenRecommendations:
    def test_corpus_file_matches_its_generator(self):
        """The committed corpus must be the generator's output — a drifted
        generator would make --regen-golden silently rebuild different
        inputs next time the file is recreated."""
        regenerated = build_frozen_corpus()
        with np.load(CORPUS_FILE) as data:
            assert sorted(data.files) == sorted(regenerated)
            for key, value in regenerated.items():
                np.testing.assert_array_equal(data[key], value)

    @pytest.mark.parametrize("path", PATHS)
    def test_top3_recommendations_match_golden(self, path, regen_golden):
        actual = compute_top3(path)
        if regen_golden:
            expected = (json.loads(EXPECTED_FILE.read_text())
                        if EXPECTED_FILE.exists() else {"paths": {}})
            expected.setdefault("paths", {})[path] = actual
            expected["k"] = TOP
            expected["accuracy_weight"] = WEIGHT
            expected["paths"] = {p: expected["paths"][p]
                                 for p in sorted(expected["paths"])}
            EXPECTED_FILE.write_text(json.dumps(expected, indent=2,
                                                sort_keys=True) + "\n")
            pytest.skip(f"regenerated golden top-3 for {path!r}")
        assert EXPECTED_FILE.exists(), \
            "golden file missing; run with --regen-golden and commit it"
        expected = json.loads(EXPECTED_FILE.read_text())
        assert expected["paths"][path] == actual, (
            f"top-3 recommendations drifted on the {path!r} serving path; "
            "if the ranking change is intentional, regenerate with "
            "--regen-golden and review the diff")
