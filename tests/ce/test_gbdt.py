"""From-scratch gradient-boosted trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.gbdt import GradientBoostedTrees, RegressionTree


class TestRegressionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(np.float64)
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.01

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        y = np.full(50, 7.0)
        tree = RegressionTree(max_depth=3).fit(x, y)
        assert tree.root.is_leaf
        np.testing.assert_allclose(tree.predict(x[:5]), 7.0)

    def test_depth_limit(self):
        x = np.random.default_rng(0).normal(size=(200, 1))
        y = np.sin(x[:, 0] * 10)
        tree = RegressionTree(max_depth=1).fit(x, y)
        # Depth 1 → at most 2 leaves → at most 2 distinct predictions.
        assert len(np.unique(tree.predict(x))) <= 2

    def test_min_samples_leaf(self):
        x = np.arange(10, dtype=np.float64).reshape(-1, 1)
        y = x[:, 0]
        tree = RegressionTree(max_depth=5, min_samples_leaf=4).fit(x, y)

        def leaf_sizes(node, xs):
            if node.is_leaf:
                return [len(xs)]
            mask = xs[:, node.feature] <= node.threshold
            return leaf_sizes(node.left, xs[mask]) + leaf_sizes(node.right, xs[~mask])
        assert min(leaf_sizes(tree.root, x)) >= 4


class TestGBDT:
    def test_improves_over_mean_baseline(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 4))
        y = 3 * x[:, 0] + np.sin(x[:, 1] * 6)
        model = GradientBoostedTrees(n_estimators=30, learning_rate=0.3).fit(x, y)
        residual = np.mean((model.predict(x) - y) ** 2)
        baseline = np.var(y)
        assert residual < baseline * 0.1

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = x[:, 0] * 2
        a = GradientBoostedTrees(seed=5, subsample=0.8).fit(x, y).predict(x)
        b = GradientBoostedTrees(seed=5, subsample=0.8).fit(x, y).predict(x)
        np.testing.assert_allclose(a, b)

    def test_predict_shape(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        model = GradientBoostedTrees(n_estimators=3).fit(x, x[:, 0])
        assert model.predict(x[:7]).shape == (7,)

    def test_no_extrapolation_beyond_targets(self):
        """Trees cannot predict outside the training target range —
        the failure mode behind LW-XGB's Q-error in the paper."""
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = x[:, 0] * 10
        model = GradientBoostedTrees(n_estimators=20).fit(x, y)
        far = model.predict(np.array([[100.0]]))[0]
        assert far <= y.max() + 1e-6

    def test_shrinkage_slows_fit(self):
        x = np.random.default_rng(2).normal(size=(150, 2))
        y = x[:, 0]
        fast = GradientBoostedTrees(n_estimators=3, learning_rate=1.0).fit(x, y)
        slow = GradientBoostedTrees(n_estimators=3, learning_rate=0.05).fit(x, y)
        assert (np.mean((fast.predict(x) - y) ** 2)
                < np.mean((slow.predict(x) - y) ** 2))
