"""FLAT / FSPN estimator: multi-leaves, factorize nodes and the full model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce import build_model, clip_card
from repro.ce.base import TrainingContext
from repro.ce.fspn import (FLAT, FLATConfig, FactorizeNode, MultiLeaf,
                           _split_group, build_fspn)
from repro.ce.spn import LeafNode, ProductNode
from repro.testbed.metrics import qerror
from repro.workload.query import Predicate, Query


def correlated_pair(n=3000, seed=0, flip=0.05):
    """Two near-identical columns plus an independent third."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 12, n)
    b = a.copy()
    noise = rng.random(n) < flip
    b[noise] = rng.integers(0, 12, noise.sum())
    c = rng.integers(0, 12, n)
    return {"t.a": a, "t.b": b, "t.c": c}


class TestMultiLeaf:
    def test_table_is_a_distribution(self):
        leaf = MultiLeaf({"t.a": np.array([0, 0, 1, 2]),
                          "t.b": np.array([5, 5, 6, 7])})
        assert leaf.table.sum() == pytest.approx(1.0)
        assert (leaf.table >= 0).all()

    def test_unconstrained_probability_is_one(self):
        cols = correlated_pair()
        leaf = MultiLeaf({k: cols[k] for k in ("t.a", "t.b")})
        assert leaf.probability({}) == pytest.approx(1.0)

    def test_point_probability_matches_empirical(self):
        a = np.array([0, 0, 0, 1])
        b = np.array([0, 0, 1, 1])
        leaf = MultiLeaf({"t.a": a, "t.b": b})
        assert leaf.probability({"t.a": (0, 0), "t.b": (0, 0)}) == pytest.approx(0.5)
        assert leaf.probability({"t.a": (0, 0), "t.b": (1, 1)}) == pytest.approx(0.25)
        assert leaf.probability({"t.a": (1, 1), "t.b": (0, 0)}) == pytest.approx(0.0)

    def test_captures_correlation_independence_misses(self):
        """P(a=v, b=v) should track the joint, not the product of marginals."""
        cols = correlated_pair(flip=0.0)  # perfectly correlated
        # 16 bins >= the 12-value domain, so the discretizer is exact and
        # the joint table reflects the dependence without binning blur.
        joint = MultiLeaf({"t.a": cols["t.a"], "t.b": cols["t.b"]},
                          bins_per_dim=16)
        p_joint = joint.probability({"t.a": (3, 3), "t.b": (3, 3)})
        marginal = joint.probability({"t.a": (3, 3)})
        # Exact dependence: P(a=3, b=3) == P(a=3) >> P(a=3)·P(b=3).
        assert p_joint == pytest.approx(marginal, rel=1e-9)
        assert p_joint > marginal * marginal * 2

    def test_partial_ranges_marginalize(self):
        cols = correlated_pair()
        leaf = MultiLeaf({k: cols[k] for k in ("t.a", "t.b")}, bins_per_dim=16)
        # Marginal over t.a alone equals the empirical frequency.
        empirical = float(np.mean((cols["t.a"] >= 2) & (cols["t.a"] <= 5)))
        assert leaf.probability({"t.a": (2, 5)}) == pytest.approx(empirical, abs=1e-9)

    def test_three_dimensional_group(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 6, 2000)
        leaf = MultiLeaf({"t.a": a, "t.b": a, "t.c": a})
        assert leaf.probability({}) == pytest.approx(1.0)
        p = leaf.probability({"t.a": (0, 2), "t.b": (0, 2), "t.c": (0, 2)})
        empirical = float(np.mean(a <= 2))
        assert p == pytest.approx(empirical, abs=0.03)

    @given(lo=st.integers(0, 11), width=st.integers(0, 11))
    @settings(max_examples=25, deadline=None)
    def test_probability_in_unit_interval(self, lo, width):
        cols = correlated_pair(n=500)
        leaf = MultiLeaf({k: cols[k] for k in ("t.a", "t.b")})
        p = leaf.probability({"t.a": (lo, lo + width)})
        assert 0.0 <= p <= 1.0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            MultiLeaf({})


class TestSplitGroup:
    def test_small_group_untouched(self):
        corr = np.zeros((4, 4))
        assert _split_group([0, 1, 2], corr, max_group=3) == [[0, 1, 2]]

    def test_oversized_group_chunked(self):
        n = 5
        corr = np.random.default_rng(0).random((n, n))
        corr = (corr + corr.T) / 2
        chunks = _split_group(list(range(n)), corr, max_group=2)
        flattened = sorted(c for chunk in chunks for c in chunk)
        assert flattened == list(range(n))
        assert all(len(c) <= 2 for c in chunks)

    def test_strongest_edge_stays_together(self):
        corr = np.zeros((4, 4))
        corr[1, 3] = corr[3, 1] = 0.99
        corr[0, 2] = corr[2, 0] = 0.7
        chunks = _split_group([0, 1, 2, 3], corr, max_group=2)
        assert [1, 3] in chunks
        assert [0, 2] in chunks


class TestBuildFSPN:
    def test_single_column_is_leaf(self):
        node = build_fspn({"t.a": np.arange(50)})
        assert isinstance(node, LeafNode)

    def test_correlated_pair_becomes_factorize(self):
        node = build_fspn(correlated_pair())
        assert isinstance(node, FactorizeNode)
        joint_cols = {c for leaf in node.joint_children for c in leaf.names}
        assert joint_cols == {"t.a", "t.b"}

    def test_independent_columns_skip_factorize(self):
        rng = np.random.default_rng(7)
        cols = {f"t.c{i}": rng.integers(0, 20, 1500) for i in range(3)}
        node = build_fspn(cols)
        assert not isinstance(node, FactorizeNode)

    def test_unconstrained_probability_is_one(self):
        node = build_fspn(correlated_pair())
        assert node.probability({}) == pytest.approx(1.0, abs=1e-9)

    def test_beats_independence_on_anticorrelated_query(self):
        """The headline FLAT property: joint modeling of correlated pairs."""
        cols = correlated_pair(flip=0.0)
        fspn = build_fspn(cols)
        # a == b always, so P(a in [0,2] AND b in [9,11]) is truly 0.
        contradiction = fspn.probability({"t.a": (0, 2), "t.b": (9, 11)})
        independent = ProductNode([LeafNode("t.a", cols["t.a"]),
                                   LeafNode("t.b", cols["t.b"])])
        indep_estimate = independent.probability(
            {"t.a": (0, 2), "t.b": (9, 11)})
        assert contradiction < indep_estimate / 3

    def test_zero_columns_rejected(self):
        with pytest.raises(ValueError):
            build_fspn({})

    def test_probability_monotone_in_range_width(self):
        node = build_fspn(correlated_pair())
        widths = [node.probability({"t.a": (0, hi)}) for hi in range(12)]
        assert all(b >= a - 1e-9 for a, b in zip(widths, widths[1:]))

    def test_size_positive(self):
        node = build_fspn(correlated_pair())
        assert node.size() >= 3

    def test_max_group_respected(self):
        rng = np.random.default_rng(11)
        base = rng.integers(0, 10, 2500)
        cols = {f"t.c{i}": base.copy() for i in range(5)}
        node = build_fspn(cols, FLATConfig(max_group=2))
        assert isinstance(node, FactorizeNode)
        assert all(len(leaf.names) <= 2 for leaf in node.joint_children)


class TestFLATModel:
    def test_registered(self):
        model = build_model("FLAT")
        assert isinstance(model, FLAT)
        assert model.data_driven and not model.query_driven

    def test_estimates_on_dataset(self, small_dataset, small_workload):
        ctx = TrainingContext.build(small_dataset, small_workload)
        model = FLAT()
        model.fit(ctx)
        test = small_workload.test
        true = np.array([q.true_cardinality for q in test], dtype=np.float64)
        estimates = model.estimate_batch(test)
        assert np.all(np.isfinite(estimates)) and np.all(estimates >= 1.0)
        mean_q = float(qerror(estimates, true).mean())
        ones_q = float(qerror(np.ones_like(true), true).mean())
        assert mean_q < ones_q / 2

    def test_single_table_accuracy(self, single_dataset, single_workload):
        ctx = TrainingContext.build(single_dataset, single_workload)
        model = FLAT()
        model.fit(ctx)
        test = single_workload.test
        true = np.array([q.true_cardinality for q in test], dtype=np.float64)
        estimates = model.estimate_batch(test)
        assert float(qerror(estimates, true).mean()) < 5.0

    def test_unseen_template_fitted_lazily(self, small_dataset,
                                           small_workload):
        ctx = TrainingContext.build(small_dataset, small_workload)
        model = FLAT()
        model.fit(ctx)
        single = Query(tables=(small_dataset.table_names[0],))
        assert model.estimate(single) >= 1.0
