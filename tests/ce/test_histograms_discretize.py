"""Histograms and discretization: the statistics substrate of the CE zoo."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce.discretize import Discretizer
from repro.ce.histograms import (BinnedHistogram, EquiDepthHistogram,
                                 ValueHistogram)


class TestValueHistogram:
    def test_exact_fractions(self):
        hist = ValueHistogram(np.array([1, 1, 2, 3, 3, 3]))
        assert hist.range_fraction(1, 1) == pytest.approx(2 / 6)
        assert hist.range_fraction(2, 3) == pytest.approx(4 / 6)
        assert hist.range_fraction(0, 10) == 1.0

    def test_empty_range(self):
        hist = ValueHistogram(np.array([1, 2, 3]))
        assert hist.range_fraction(5, 9) == 0.0
        assert hist.range_fraction(3, 1) == 0.0

    def test_empty_values(self):
        hist = ValueHistogram(np.array([], dtype=np.int64))
        assert hist.range_fraction(0, 10) == 0.0
        assert hist.num_distinct == 0

    def test_min_max(self):
        hist = ValueHistogram(np.array([5, 2, 9]))
        assert hist.min == 2 and hist.max == 9

    def test_mass_vector(self):
        hist = ValueHistogram(np.array([1, 2, 3]))
        np.testing.assert_array_equal(hist.mass_vector(2, 3), [0, 1, 1])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=50),
           st.integers(0, 20), st.integers(0, 20))
    def test_fraction_matches_direct_count(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        arr = np.array(values)
        hist = ValueHistogram(arr)
        expected = np.mean((arr >= lo) & (arr <= hi))
        assert hist.range_fraction(lo, hi) == pytest.approx(expected)


class TestBinnedHistogram:
    def test_full_range_is_one(self):
        values = np.random.default_rng(0).integers(0, 200, 1000)
        hist = BinnedHistogram(values, max_bins=8)
        assert hist.range_fraction(0, 199) == pytest.approx(1.0)

    def test_small_domain_is_exact(self):
        values = np.array([0, 0, 1, 2, 2, 2])
        hist = BinnedHistogram(values, max_bins=8)
        assert hist.range_fraction(2, 2) == pytest.approx(0.5)

    def test_bounded_between_zero_and_one(self):
        values = np.random.default_rng(1).integers(0, 500, 300)
        hist = BinnedHistogram(values, max_bins=6)
        for lo, hi in [(0, 10), (100, 400), (450, 600)]:
            assert 0.0 <= hist.range_fraction(lo, hi) <= 1.0


class TestEquiDepth:
    def test_full_range(self):
        values = np.random.default_rng(0).integers(0, 100, 500)
        hist = EquiDepthHistogram(values, num_buckets=16)
        assert hist.range_fraction(-1, 101) == pytest.approx(1.0, abs=1e-6)

    def test_median_split(self):
        values = np.arange(1000)
        hist = EquiDepthHistogram(values, num_buckets=10)
        assert hist.range_fraction(0, 499) == pytest.approx(0.5, abs=0.05)

    def test_empty(self):
        hist = EquiDepthHistogram(np.array([]))
        assert hist.range_fraction(0, 1) == 0.0

    def test_heavy_value_degenerate_buckets(self):
        values = np.concatenate([np.zeros(900), np.arange(100)])
        hist = EquiDepthHistogram(values, num_buckets=8)
        frac = hist.range_fraction(0, 0)
        assert frac > 0.5


class TestDiscretizer:
    def test_value_kind_for_small_domains(self):
        disc = Discretizer(np.array([3, 5, 9]), max_bins=10)
        assert disc.kind == "value"
        assert disc.n_bins == 3

    def test_width_kind_for_large_domains(self):
        disc = Discretizer(np.arange(100), max_bins=10)
        assert disc.kind == "width"
        assert disc.n_bins == 10

    def test_transform_bounds(self):
        values = np.random.default_rng(0).integers(0, 1000, 200)
        disc = Discretizer(values, max_bins=16)
        ids = disc.transform(values)
        assert ids.min() >= 0 and ids.max() < disc.n_bins

    def test_value_kind_range_mass_is_indicator(self):
        disc = Discretizer(np.array([1, 4, 7]), max_bins=10)
        np.testing.assert_array_equal(disc.range_mass(4, 7), [0, 1, 1])

    def test_range_mass_bounds(self):
        disc = Discretizer(np.arange(500), max_bins=8)
        mass = disc.range_mass(100, 300)
        assert np.all(mass >= 0) and np.all(mass <= 1)

    def test_empty_range_mass(self):
        disc = Discretizer(np.arange(50), max_bins=8)
        assert disc.range_mass(10, 5).sum() == 0.0

    def test_full_mass(self):
        disc = Discretizer(np.arange(50), max_bins=8)
        np.testing.assert_array_equal(disc.full_mass(), np.ones(8))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100), lo=st.integers(0, 99), width=st.integers(0, 99))
    def test_mass_weighted_probability_approximates_truth(self, seed, lo, width):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 100, 2000)
        disc = Discretizer(values, max_bins=20)
        ids = disc.transform(values)
        probs = np.bincount(ids, minlength=disc.n_bins) / len(values)
        hi = min(99, lo + width)
        estimated = float(np.dot(probs, disc.range_mass(lo, hi)))
        truth = float(np.mean((values >= lo) & (values <= hi)))
        assert estimated == pytest.approx(truth, abs=0.08)
