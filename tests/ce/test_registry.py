"""CE model registry: the extensible candidate set."""

from __future__ import annotations

import pytest

from repro.ce import registry
from repro.ce.base import CEModel


class TestRegistry:
    def test_seven_candidates(self):
        assert len([m for m in registry.CANDIDATE_MODELS
                    if m in ("BayesCard", "DeepDB", "NeuroCard", "MSCN",
                             "LW-NN", "LW-XGB", "UAE")]) == 7

    def test_family_partition(self):
        families = (set(registry.QUERY_DRIVEN_MODELS)
                    | set(registry.DATA_DRIVEN_MODELS)
                    | set(registry.HYBRID_MODELS))
        assert families == {"BayesCard", "DeepDB", "NeuroCard", "MSCN",
                            "LW-NN", "LW-XGB", "UAE"}

    def test_build_model(self):
        model = registry.build_model("MSCN")
        assert model.name == "MSCN"

    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            registry.build_model("NotAModel")

    def test_build_models_default_order(self):
        models = registry.build_models()
        assert list(models) == registry.CANDIDATE_MODELS

    def test_register_custom_model(self):
        class MyCE(CEModel):
            name = "MyCE"

            def fit(self, ctx):
                pass

            def estimate(self, query):
                return 1.0

        registry.register("MyCE", MyCE)
        try:
            assert "MyCE" in registry.available_models()
            assert isinstance(registry.build_model("MyCE"), MyCE)
            assert "MyCE" in registry.CANDIDATE_MODELS
        finally:
            registry.CANDIDATE_MODELS.remove("MyCE")
            del registry._REGISTRY["MyCE"]

    def test_register_non_cemodel_rejected(self):
        with pytest.raises(TypeError):
            registry.register("Bogus", dict)

    def test_postgres_available_but_not_candidate(self):
        assert "Postgres" in registry.available_models()
        assert "Postgres" not in registry.CANDIDATE_MODELS
