"""MADE: autoregressive property, training, conditionals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.made import MADE, _build_masks


def toy_ids(n=600, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, n)
    b = (a + rng.integers(0, 2, n)) % 4
    c = rng.integers(0, 3, n)
    return np.stack([a, b, c], axis=1)


class TestMasks:
    def test_shapes(self):
        m1, m2, m3 = _build_masks([4, 4, 3], 16, np.random.default_rng(0))
        assert m1.shape == (11, 16)
        assert m2.shape == (16, 16)
        assert m3.shape == (16, 11)

    def test_first_column_output_disconnected(self):
        m1, m2, m3 = _build_masks([4, 4, 3], 16, np.random.default_rng(0))
        # Output block of column 1 (degree 1) needs hidden degree < 1: none.
        assert m3[:, :4].sum() == 0


class TestAutoregressiveProperty:
    def test_output_block_ignores_later_inputs(self):
        made = MADE([4, 4, 3], hidden=16, seed=0)
        made._cache_weights()
        ids = toy_ids(8)
        x_full = made.one_hot(ids)
        # Zero out blocks >= 1 and check block-1 logits are unchanged when
        # later blocks change.
        x_a = x_full.copy()
        x_b = x_full.copy()
        x_b[:, 4:] = 0.0  # wipe columns 1 and 2
        probs_a = made.conditional_probs(x_a, 1)
        # Keep column 0, wipe later columns:
        x_b[:, :4] = x_full[:, :4]
        probs_b = made.conditional_probs(x_b, 1)
        np.testing.assert_allclose(probs_a, probs_b)

    def test_first_column_unconditional(self):
        made = MADE([4, 4, 3], hidden=16, seed=0)
        made._cache_weights()
        x1 = np.zeros((2, made.input_dim))
        x2 = made.one_hot(toy_ids(2))
        np.testing.assert_allclose(made.conditional_probs(x1, 0),
                                   made.conditional_probs(x2, 0))


class TestTraining:
    def test_nll_decreases(self):
        ids = toy_ids()
        made = MADE([4, 4, 3], hidden=24, seed=1)
        history = made.fit(ids, epochs=6, lr=5e-3, seed=2)
        assert history[-1] < history[0]

    def test_learns_dependence(self):
        """After training, P(b | a) should reflect b ≈ a or a+1 (mod 4)."""
        ids = toy_ids(n=2000)
        made = MADE([4, 4, 3], hidden=32, seed=1)
        made.fit(ids, epochs=12, lr=8e-3, seed=2)
        x = np.zeros((1, made.input_dim))
        x[0, 2] = 1.0  # a = 2
        probs = made.conditional_probs(x, 1)[0]
        # b ∈ {2, 3} should hold ~all the mass.
        assert probs[2] + probs[3] > 0.7

    def test_conditionals_are_distributions(self):
        made = MADE([4, 4, 3], hidden=16, seed=3)
        made._cache_weights()
        x = made.one_hot(toy_ids(16))
        for col in range(3):
            probs = made.conditional_probs(x, col)
            np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
            assert np.all(probs >= 0)

    def test_one_hot_layout(self):
        made = MADE([3, 2], hidden=8, seed=0)
        x = made.one_hot(np.array([[2, 0]]))
        np.testing.assert_array_equal(x[0], [0, 0, 1, 1, 0])
