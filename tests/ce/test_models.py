"""Integration tests of the nine CE models against shared fixtures.

Each model is fitted on the small multi-table dataset (and the single-table
one where relevant) and must produce positive finite estimates with a sane
mean Q-error — well below what always-guessing-1 would give.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce import (BayesCard, DeepDB, EnsembleCE, LWNN, LWXGB, MSCN,
                      NeuroCard, PostgresEstimator, UAE, build_models,
                      clip_card)
from repro.ce.base import TrainingContext
from repro.ce.lwnn import LWNNConfig
from repro.ce.lwxgb import LWXGBConfig
from repro.ce.mscn import MSCNConfig
from repro.ce.neurocard import NeuroCardConfig
from repro.ce.uae import UAEConfig
from repro.testbed.metrics import qerror

FAST_NEURO = NeuroCardConfig(epochs=4, hidden=24, num_samples=32)
FAST_UAE = UAEConfig(epochs=4, hidden=24, num_samples=32)
FAST_MSCN = MSCNConfig(epochs=25)
FAST_LWNN = LWNNConfig(epochs=40)


def fit_and_score(model, ctx):
    model.fit(ctx)
    test = ctx.workload.test
    true = np.array([q.true_cardinality for q in test], dtype=np.float64)
    estimates = model.estimate_batch(test)
    assert np.all(np.isfinite(estimates))
    assert np.all(estimates >= 1.0)
    return float(qerror(estimates, true).mean()), estimates, true


def baseline_qerror(ctx):
    """Q-error of always guessing 1 row."""
    test = ctx.workload.test
    true = np.array([q.true_cardinality for q in test], dtype=np.float64)
    return float(qerror(np.ones_like(true), true).mean())


@pytest.mark.parametrize("factory", [
    lambda: PostgresEstimator(),
    lambda: MSCN(FAST_MSCN),
    lambda: LWNN(FAST_LWNN),
    lambda: LWXGB(LWXGBConfig(n_estimators=15)),
    lambda: DeepDB(),
    lambda: BayesCard(),
    lambda: NeuroCard(FAST_NEURO),
    lambda: UAE(FAST_UAE),
], ids=["Postgres", "MSCN", "LW-NN", "LW-XGB", "DeepDB", "BayesCard",
        "NeuroCard", "UAE"])
def test_model_beats_trivial_baseline(factory, small_ctx):
    q_mean, _, _ = fit_and_score(factory(), small_ctx)
    assert q_mean < baseline_qerror(small_ctx) / 2


class TestDataDrivenSpecifics:
    def test_deepdb_unconstrained_query_returns_join_size(self, small_ctx):
        model = DeepDB()
        model.fit(small_ctx)
        from repro.workload.query import Query
        template = small_ctx.workload.templates[0]
        estimate = model.estimate(Query(tuple(template)))
        exact = small_ctx.samples.template_size(tuple(sorted(template)))
        assert estimate == pytest.approx(exact, rel=0.01)

    def test_bayescard_single_table_accuracy(self, single_ctx):
        q_mean, _, _ = fit_and_score(BayesCard(), single_ctx)
        assert q_mean < 3.0

    def test_neurocard_lazy_template(self, small_ctx, small_dataset):
        model = NeuroCard(FAST_NEURO)
        model.fit(small_ctx)
        from repro.workload.query import Query
        # A template outside the workload: single table not used alone.
        all_templates = set(map(tuple, small_ctx.workload.templates))
        for t in small_dataset.connected_subsets(max_size=1):
            if t not in all_templates:
                estimate = model.estimate(Query(t))
                assert estimate >= 1.0
                return
        pytest.skip("workload covers all single-table templates")

    def test_uae_calibrates_some_template(self, small_ctx):
        model = UAE(FAST_UAE)
        model.fit(small_ctx)
        assert len(model._calibration) >= 1

    def test_template_budget_split(self, small_ctx):
        model = DeepDB()
        model.fit(small_ctx)
        budget = model._per_template_budget
        n_templates = len(small_ctx.workload.templates)
        assert budget >= model.MIN_TEMPLATE_SAMPLE
        assert budget <= max(model.MIN_TEMPLATE_SAMPLE,
                             small_ctx.sample_size // max(1, n_templates))


class TestQueryDrivenSpecifics:
    def test_lwnn_inference_is_numpy_fast(self, small_ctx):
        import time
        model = LWNN(FAST_LWNN)
        model.fit(small_ctx)
        query = small_ctx.workload.test[0]
        start = time.perf_counter()
        for _ in range(50):
            model.estimate(query)
        per_query = (time.perf_counter() - start) / 50
        assert per_query < 0.001  # < 1 ms

    def test_mscn_deterministic(self, small_ctx):
        a = MSCN(FAST_MSCN); a.fit(small_ctx)
        b = MSCN(FAST_MSCN); b.fit(small_ctx)
        q = small_ctx.workload.test[0]
        assert a.estimate(q) == pytest.approx(b.estimate(q))


class TestEnsemble:
    def test_weights_sum_to_one(self, small_ctx):
        base = [PostgresEstimator(), LWXGB(LWXGBConfig(n_estimators=5))]
        for m in base:
            m.fit(small_ctx)
        ensemble = EnsembleCE(base)
        ensemble.fit(small_ctx)
        assert ensemble.weights.sum() == pytest.approx(1.0)

    def test_estimate_within_log_hull(self, small_ctx):
        base = [PostgresEstimator(), LWXGB(LWXGBConfig(n_estimators=5))]
        for m in base:
            m.fit(small_ctx)
        ensemble = EnsembleCE(base)
        ensemble.fit(small_ctx)
        q = small_ctx.workload.test[0]
        estimates = [m.estimate(q) for m in base]
        assert min(estimates) * 0.99 <= ensemble.estimate(q) <= max(estimates) * 1.01

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            EnsembleCE([])


class TestClipCard:
    def test_floors_at_one(self):
        assert clip_card(0.001) == 1.0
        assert clip_card(-5) == 1.0

    def test_handles_nan_inf(self):
        assert clip_card(float("nan")) == 1.0
        assert clip_card(float("inf"), upper=10.0) == 10.0

    def test_upper_bound(self):
        assert clip_card(100, upper=50) == 50.0
