"""Log-cardinality normalization shared by the query-driven regressors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce.targets import LogCardNormalizer


class TestLogCardNormalizer:
    def test_transform_in_unit_interval(self):
        cards = np.array([1, 10, 100, 10_000])
        norm = LogCardNormalizer().fit(cards)
        out = norm.transform(cards)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 10**9), min_size=2, max_size=20))
    def test_roundtrip(self, cards):
        arr = np.array(cards, dtype=np.float64)
        norm = LogCardNormalizer().fit(arr)
        recovered = norm.inverse(norm.transform(arr))
        np.testing.assert_allclose(recovered, arr, rtol=1e-6, atol=1e-6)

    def test_degenerate_single_value(self):
        norm = LogCardNormalizer().fit(np.array([50.0]))
        out = norm.inverse(norm.transform(np.array([50.0])))
        assert out[0] == pytest.approx(50.0, rel=1e-6)

    def test_inverse_clips_exponent(self):
        norm = LogCardNormalizer().fit(np.array([1.0, 100.0]))
        assert np.isfinite(norm.inverse(np.array([1e6]))).all()

    def test_monotone(self):
        norm = LogCardNormalizer().fit(np.array([1, 1000]))
        a, b = norm.transform(np.array([10, 500]))
        assert a < b
