"""SPN and Chow–Liu substrates of the data-driven estimators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce.chow_liu import ChowLiuTree, mutual_information
from repro.ce.spn import (LeafNode, ProductNode, SPNConfig, SumNode, build_spn)


def correlated_columns(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 10, n)
    b = a.copy()
    flip = rng.random(n) < 0.1
    b[flip] = rng.integers(0, 10, flip.sum())
    c = rng.integers(0, 10, n)
    return {"t.a": a, "t.b": b, "t.c": c}


class TestSPNNodes:
    def test_leaf_probability(self):
        leaf = LeafNode("t.a", np.array([1, 1, 2, 4]))
        assert leaf.probability({"t.a": (1, 2)}) == pytest.approx(0.75)
        assert leaf.probability({}) == 1.0

    def test_product_multiplies(self):
        l1 = LeafNode("t.a", np.array([0, 1]))
        l2 = LeafNode("t.b", np.array([0, 1]))
        node = ProductNode([l1, l2])
        assert node.probability({"t.a": (0, 0), "t.b": (0, 0)}) == pytest.approx(0.25)

    def test_sum_weights(self):
        l1 = LeafNode("t.a", np.array([0, 0]))
        l2 = LeafNode("t.a", np.array([1, 1]))
        node = SumNode([3, 1], [l1, l2])
        assert node.probability({"t.a": (0, 0)}) == pytest.approx(0.75)

    def test_size_counts_nodes(self):
        node = ProductNode([LeafNode("t.a", np.array([0])),
                            LeafNode("t.b", np.array([0]))])
        assert node.size() == 3


class TestBuildSPN:
    def test_single_column_is_leaf(self):
        spn = build_spn({"t.a": np.arange(100)})
        assert isinstance(spn, LeafNode)

    def test_probability_bounds(self):
        spn = build_spn(correlated_columns())
        for lo in (0, 3, 7):
            p = spn.probability({"t.a": (lo, lo + 2), "t.c": (0, 5)})
            assert 0.0 <= p <= 1.0

    def test_unconstrained_probability_is_one(self):
        spn = build_spn(correlated_columns())
        assert spn.probability({}) == pytest.approx(1.0, abs=1e-9)

    def test_captures_correlation_better_than_independence(self):
        cols = correlated_columns()
        spn = build_spn(cols, SPNConfig(min_rows=32, correlation_threshold=0.1))
        independent = ProductNode([LeafNode(k, v) for k, v in cols.items()])
        truth = np.mean((cols["t.a"] <= 2) & (cols["t.b"] <= 2))
        ranges = {"t.a": (0, 2), "t.b": (0, 2)}
        assert abs(spn.probability(ranges) - truth) < \
            abs(independent.probability(ranges) - truth)

    def test_min_rows_forces_independence(self):
        cols = {k: v[:10] for k, v in correlated_columns().items()}
        spn = build_spn(cols, SPNConfig(min_rows=64))
        assert isinstance(spn, ProductNode)
        assert all(isinstance(c, LeafNode) for c in spn.children)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            build_spn({})

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_probability_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        cols = {f"t.c{i}": rng.integers(0, 8, 300) for i in range(3)}
        spn = build_spn(cols, SPNConfig(seed=seed))
        p = spn.probability({"t.c0": (2, 5), "t.c1": (0, 3), "t.c2": (4, 7)})
        assert 0.0 <= p <= 1.0


class TestMutualInformation:
    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 20_000)
        b = rng.integers(0, 4, 20_000)
        assert mutual_information(a, b, 4, 4) < 0.01

    def test_identical_equals_entropy(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 20_000)
        mi = mutual_information(a, a, 4, 4)
        probs = np.bincount(a, minlength=4) / len(a)
        entropy = -np.sum(probs * np.log(probs))
        assert mi == pytest.approx(entropy, abs=0.01)

    def test_symmetric(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 5, 5000)
        b = (a + rng.integers(0, 2, 5000)) % 5
        assert mutual_information(a, b, 5, 5) == \
            pytest.approx(mutual_information(b, a, 5, 5))

    def test_empty(self):
        assert mutual_information(np.array([], dtype=int),
                                  np.array([], dtype=int), 2, 2) == 0.0


class TestChowLiuTree:
    def test_single_column(self):
        rng = np.random.default_rng(0)
        ids = {"a": rng.integers(0, 4, 1000)}
        tree = ChowLiuTree().fit(ids, {"a": 4})
        mass = np.zeros(4)
        mass[0] = 1.0
        expected = np.mean(ids["a"] == 0)
        assert tree.query_probability({"a": mass}) == pytest.approx(expected, abs=0.01)

    def test_unconstrained_is_one(self):
        rng = np.random.default_rng(0)
        ids = {"a": rng.integers(0, 4, 500), "b": rng.integers(0, 3, 500)}
        tree = ChowLiuTree().fit(ids, {"a": 4, "b": 3})
        assert tree.query_probability({}) == pytest.approx(1.0, abs=1e-9)

    def test_tree_is_spanning(self):
        rng = np.random.default_rng(3)
        ids = {f"c{i}": rng.integers(0, 4, 400) for i in range(5)}
        tree = ChowLiuTree().fit(ids, {k: 4 for k in ids})
        roots = [c for c, p in tree.parent.items() if p is None]
        assert len(roots) == 1
        assert set(tree.parent) == set(ids)

    def test_captures_pairwise_dependence(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 6, 4000)
        b = a.copy()
        flip = rng.random(4000) < 0.05
        b[flip] = rng.integers(0, 6, flip.sum())
        ids = {"a": a, "b": b}
        tree = ChowLiuTree(alpha=0.01).fit(ids, {"a": 6, "b": 6})
        mass_a = np.zeros(6); mass_a[0] = 1.0
        mass_b = np.zeros(6); mass_b[0] = 1.0
        truth = np.mean((a == 0) & (b == 0))
        independent = np.mean(a == 0) * np.mean(b == 0)
        estimate = tree.query_probability({"a": mass_a, "b": mass_b})
        assert abs(estimate - truth) < abs(independent - truth)

    def test_query_probability_bounds(self):
        rng = np.random.default_rng(5)
        ids = {f"c{i}": rng.integers(0, 5, 300) for i in range(4)}
        tree = ChowLiuTree().fit(ids, {k: 5 for k in ids})
        allowed = {k: (np.arange(5) < 3).astype(float) for k in ids}
        assert 0.0 <= tree.query_probability(allowed) <= 1.0
