"""End-to-end integration: the full AutoCE story on a miniature corpus.

These are the slowest tests in the suite (a couple of minutes total); they
assert the headline *shape* results of the paper at miniature scale:
AutoCE beats the Rule baseline, matches or beats raw-feature KNN, and the
advisor's picks beat the average fixed model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AutoCE, AutoCEConfig, DMLConfig

# Benchmark-scale: excluded from tier-1, run by CI's `-m slow` job.
pytestmark = pytest.mark.slow
from repro.core.selection_baselines import RawFeatureKnnSelector, RuleSelector
from repro.datagen.spec import random_spec
from repro.experiments.corpus import label_one
from repro.testbed.runner import TestbedConfig

TESTBED = TestbedConfig(num_train_queries=60, num_test_queries=15,
                        sample_size=400, mscn_epochs=15, lwnn_epochs=20,
                        made_epochs=2, made_hidden=16, made_samples=16)


@pytest.fixture(scope="module")
def labeled_corpus():
    train = [label_one(random_spec(i), TESTBED) for i in range(14)]
    test = [label_one(random_spec(800 + i), TESTBED) for i in range(6)]
    return train, test


@pytest.fixture(scope="module")
def advisor(labeled_corpus):
    train, _ = labeled_corpus
    a = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=25), seed=0))
    a.fit([e.graph for e in train], [e.label for e in train])
    return a


def mean_d_error(recommend, test, weight):
    return float(np.mean([
        e.label.d_error(recommend(e), weight) for e in test]))


class TestHeadlineShapes:
    def test_autoce_beats_rule(self, labeled_corpus, advisor):
        train, test = labeled_corpus
        rule = RuleSelector(seed=0)
        rule.fit([e.graph for e in train], [e.label for e in train])
        for weight in (1.0, 0.7):
            autoce_err = mean_d_error(
                lambda e, w=weight: advisor.recommend(e.graph, w).model,
                test, weight)
            rule_err = mean_d_error(
                lambda e, w=weight: rule.recommend(e.graph, w), test, weight)
            assert autoce_err <= rule_err + 0.02

    def test_autoce_beats_average_fixed_model(self, labeled_corpus, advisor):
        _, test = labeled_corpus
        weight = 0.9
        autoce_err = mean_d_error(
            lambda e: advisor.recommend(e.graph, weight).model, test, weight)
        fixed_errors = []
        for model in test[0].label.model_names:
            fixed_errors.append(mean_d_error(lambda e, m=model: m, test, weight))
        assert autoce_err <= float(np.mean(fixed_errors))

    def test_recommendations_vary_with_weights(self, labeled_corpus, advisor):
        _, test = labeled_corpus
        picks = {w: [advisor.recommend(e.graph, w).model for e in test]
                 for w in (1.0, 0.1)}
        # Pure-accuracy picks must differ somewhere from pure-speed picks.
        assert picks[1.0] != picks[0.1]

    def test_inference_is_fast(self, labeled_corpus, advisor):
        """Paper: 0.79 s per dataset on their stack — ours is well under."""
        import time
        _, test = labeled_corpus
        start = time.perf_counter()
        for e in test:
            advisor.recommend(e.graph, 0.9)
        per_dataset = (time.perf_counter() - start) / len(test)
        assert per_dataset < 0.5
