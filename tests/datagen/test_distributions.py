"""The Eq. 1 skew sampler and the F2 correlation process."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.distributions import (apply_column_correlation,
                                         measure_equality_correlation,
                                         sample_skewed_column,
                                         sample_skewed_unit, skew_cdf)


class TestSkewSampler:
    def test_zero_skew_is_uniform(self):
        rng = np.random.default_rng(0)
        samples = sample_skewed_unit(rng, 50_000, 0.0)
        # Uniform: mean 0.5, each decile ≈ 10 %.
        assert abs(samples.mean() - 0.5) < 0.01
        hist, _ = np.histogram(samples, bins=10, range=(0, 1))
        assert np.all(np.abs(hist / 5000 - 1.0) < 0.1)

    def test_mean_decreases_with_skew(self):
        rng = np.random.default_rng(1)
        means = [sample_skewed_unit(np.random.default_rng(1), 20_000, s).mean()
                 for s in (0.0, 0.3, 0.6, 0.9)]
        assert all(a > b for a, b in zip(means, means[1:]))

    def test_samples_in_unit_interval(self):
        rng = np.random.default_rng(2)
        for skew in (0.0, 0.5, 0.99, 1.0):
            samples = sample_skewed_unit(rng, 1000, skew)
            assert samples.min() >= 0.0 and samples.max() <= 1.0

    def test_cdf_monotone_and_normalized(self):
        grid = np.linspace(0, 1, 101)
        for skew in (0.0, 0.2, 0.7, 0.95):
            cdf = skew_cdf(grid, skew)
            assert cdf[0] == pytest.approx(0.0, abs=1e-12)
            assert cdf[-1] == pytest.approx(1.0, abs=1e-9)
            assert np.all(np.diff(cdf) >= -1e-12)

    @settings(max_examples=20, deadline=None)
    @given(skew=st.floats(0.0, 0.99), u=st.floats(0.01, 0.99))
    def test_inverse_cdf_property(self, skew, u):
        """CDF(inverse(u)) == u for the closed-form sampler."""
        rng = np.random.default_rng(0)

        class FixedRng:
            def random(self, size):
                return np.full(size, u)

        x = sample_skewed_unit(FixedRng(), 1, skew)[0]
        assert skew_cdf(np.array([x]), skew)[0] == pytest.approx(u, abs=1e-6)

    def test_integer_column_domain(self):
        values = sample_skewed_column(0, 5000, 0.5, 3, 17)
        assert values.min() >= 3 and values.max() <= 17
        assert values.dtype == np.int64

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            sample_skewed_column(0, 10, 0.5, 5, 4)


class TestColumnCorrelation:
    def test_zero_correlation_is_copy(self):
        rng = np.random.default_rng(0)
        target = np.arange(100)
        out = apply_column_correlation(rng, np.zeros(100, dtype=np.int64),
                                       target, 0.0)
        np.testing.assert_array_equal(out, target)
        assert out is not target  # defensive copy

    def test_full_correlation_copies_source(self):
        rng = np.random.default_rng(0)
        source = np.arange(100)
        out = apply_column_correlation(rng, source, np.zeros(100, dtype=np.int64),
                                       1.0)
        np.testing.assert_array_equal(out, source)

    def test_invalid_correlation_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            apply_column_correlation(rng, np.arange(3), np.arange(3), 1.5)

    @settings(max_examples=15, deadline=None)
    @given(corr=st.floats(0.0, 1.0))
    def test_roundtrip_measurement(self, corr):
        """Measured equality correlation ≈ the injected strength (F2⁻¹)."""
        rng = np.random.default_rng(42)
        source = rng.integers(0, 1000, 20_000)
        target = rng.integers(1000, 2000, 20_000)  # disjoint domains
        mixed = apply_column_correlation(rng, source, target, corr)
        measured = measure_equality_correlation(source, mixed)
        assert measured == pytest.approx(corr, abs=0.02)

    def test_measure_empty(self):
        assert measure_equality_correlation(np.array([]), np.array([])) == 0.0
