"""Single/multi-table generation, specs and presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.multi_table import generate_dataset
from repro.datagen.presets import (ceb_like, derive_subschemas, imdb_light_like,
                                   power_like, stats_light_like)
from repro.datagen.single_table import generate_table
from repro.datagen.spec import (DEFAULT_RANGES, DatasetSpec, TableSpec,
                                random_spec, random_specs)
from repro.db.table import PK_COLUMN


class TestTableSpecValidation:
    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            TableSpec(0, 10, 5, 0.5, 0.5)

    def test_rejects_bad_skew(self):
        with pytest.raises(ValueError):
            TableSpec(2, 10, 5, 1.5, 0.5)

    def test_rejects_bad_interaction(self):
        with pytest.raises(ValueError):
            TableSpec(2, 10, 5, 0.5, 0.5, interaction=2.0)


class TestDatasetSpecValidation:
    def test_rejects_empty_tables(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", ())

    def test_rejects_bad_join_bounds(self):
        t = TableSpec(2, 10, 5, 0.5, 0.5)
        with pytest.raises(ValueError):
            DatasetSpec("x", (t,), join_correlation_min=0.9,
                        join_correlation_max=0.5)

    def test_to_dict_roundtrippable(self):
        spec = random_spec(3)
        d = spec.to_dict()
        assert d["name"] == spec.name
        assert len(d["tables"]) == spec.num_tables


class TestRandomSpec:
    def test_deterministic(self):
        assert random_spec(5) == random_spec(5)

    def test_distinct_seeds_differ(self):
        assert random_spec(5) != random_spec(6)

    def test_respects_ranges(self):
        spec = random_spec(1, ranges={"num_tables": (2, 2), "rows": (50, 60)})
        assert spec.num_tables == 2
        assert all(50 <= t.num_rows <= 60 for t in spec.tables)

    def test_random_specs_count_and_unique_names(self):
        specs = random_specs(5, base_seed=1)
        assert len(specs) == 5
        assert len({s.name for s in specs}) == 5


class TestSingleTable:
    def test_shape(self):
        spec = TableSpec(4, 200, 10, 0.3, 0.5)
        table = generate_table("t", spec, seed=1)
        assert table.num_rows == 200
        assert len(table.data_columns()) == 4

    def test_domain_bounds(self):
        spec = TableSpec(3, 500, 8, 0.6, 0.2)
        table = generate_table("t", spec, seed=2)
        for col in table.data_columns():
            assert table[col].min() >= 0
            assert table[col].max() <= 7

    def test_deterministic(self):
        spec = TableSpec(3, 100, 10, 0.4, 0.5)
        a = generate_table("t", spec, seed=3)
        b = generate_table("t", spec, seed=3)
        for col in a.data_columns():
            np.testing.assert_array_equal(a[col], b[col])

    def test_interaction_creates_3way_structure(self):
        base = TableSpec(4, 4000, 12, 0.0, 0.0, interaction=0.0)
        strong = TableSpec(4, 4000, 12, 0.0, 0.0, interaction=0.95)
        t0 = generate_table("t", base, seed=5)
        t1 = generate_table("t", strong, seed=5)
        # With interactions, some column equals (a+b) mod d often.
        def max_triple_hit(table):
            cols = [table[c] for c in table.data_columns()]
            best = 0.0
            for i in range(len(cols)):
                for j in range(len(cols)):
                    for k in range(len(cols)):
                        if len({i, j, k}) < 3:
                            continue
                        hit = np.mean((cols[i] + cols[j]) % 12 == cols[k])
                        best = max(best, hit)
            return best
        assert max_triple_hit(t1) > max_triple_hit(t0) + 0.3


class TestMultiTable:
    def test_single_table_dataset_has_no_fks(self):
        spec = DatasetSpec("s", (TableSpec(2, 50, 5, 0.1, 0.1),), seed=1)
        ds = generate_dataset(spec)
        assert ds.num_tables == 1
        assert not ds.foreign_keys

    def test_tree_structure(self):
        spec = random_spec(11, ranges={"num_tables": (4, 4)})
        ds = generate_dataset(spec)
        assert len(ds.foreign_keys) == 3  # n-1 edges: a tree
        assert ds.is_connected_subset(tuple(sorted(ds.table_names)))

    def test_join_correlation_within_spec_bounds(self):
        spec = DatasetSpec(
            "jc", (TableSpec(2, 1000, 10, 0.2, 0.1),
                   TableSpec(2, 1000, 10, 0.2, 0.1)),
            join_correlation_min=0.5, join_correlation_max=0.6, seed=13)
        ds = generate_dataset(spec)
        corr = ds.join_correlation(ds.foreign_keys[0])
        # Sampling with replacement can only lose distinct values.
        assert 0.3 <= corr <= 0.62

    def test_fanout_skew_tilts_fanouts(self):
        def fanout_spread(fanout_skew, seed=17):
            spec = DatasetSpec(
                "fs", (TableSpec(2, 2000, 30, 0.0, 0.0),
                       TableSpec(2, 2000, 30, 0.0, 0.0)),
                join_correlation_min=0.95, join_correlation_max=1.0,
                fanout_skew=fanout_skew, seed=seed)
            ds = generate_dataset(spec)
            fk = ds.foreign_keys[0]
            counts = np.bincount(ds[fk.child][fk.fk_column],
                                 minlength=ds[fk.parent].num_rows)
            return counts.std()
        assert fanout_spread(1.0) > fanout_spread(0.0)

    def test_generated_dataset_validates(self):
        for seed in range(5):
            generate_dataset(random_spec(seed))  # Dataset() validates FKs


class TestPresets:
    def test_imdb_shape(self):
        ds = imdb_light_like()
        assert ds.num_tables == 6
        assert sum(len(t.data_columns()) for t in ds.tables.values()) == 12

    def test_stats_shape(self):
        ds = stats_light_like()
        assert ds.num_tables == 8

    def test_power_shape(self):
        ds = power_like()
        assert ds.num_tables == 1
        assert len(ds[ds.table_names[0]].data_columns()) == 7

    def test_ceb_shape(self):
        assert ceb_like().num_tables == 7

    def test_derive_subschemas_protocol(self):
        ds = imdb_light_like()
        subs = derive_subschemas(ds, count=10, seed=3)
        assert len(subs) == 10
        for sub in subs:
            assert 1 <= sub.num_tables <= 5
            assert sub.is_connected_subset(tuple(sorted(sub.table_names)))
            for table in sub.tables.values():
                assert 1 <= len(table.data_columns()) <= 2

    def test_derive_subschemas_deterministic(self):
        ds = power_like()
        a = derive_subschemas(ds, count=3, seed=5)
        b = derive_subschemas(ds, count=3, seed=5)
        assert [d.name for d in a] == [d.name for d in b]
