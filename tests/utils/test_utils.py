"""Utility modules: RNG plumbing, timing, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import rng_from_seed, spawn_rng
from repro.utils.timing import Timer
from repro.utils.validation import require, require_in_range


class TestRng:
    def test_seed_deterministic(self):
        assert rng_from_seed(7).integers(0, 100) == rng_from_seed(7).integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_spawn_differs_by_label(self):
        parent_a = rng_from_seed(1)
        parent_b = rng_from_seed(1)
        child_x = spawn_rng(parent_a, "x")
        child_y = spawn_rng(parent_b, "y")
        assert child_x.integers(0, 1 << 30) != child_y.integers(0, 1 << 30)

    def test_spawn_deterministic(self):
        a = spawn_rng(rng_from_seed(3), "model")
        b = spawn_rng(rng_from_seed(3), "model")
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)


class TestTimer:
    def test_measures_elapsed(self):
        import time
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_exception_does_not_swallow(self):
        with pytest.raises(RuntimeError):
            with Timer():
                raise RuntimeError("boom")


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="nope"):
            require(False, "nope")

    def test_require_in_range(self):
        require_in_range(0.5, 0.0, 1.0, "x")
        with pytest.raises(ValueError, match="x must be"):
            require_in_range(1.5, 0.0, 1.0, "x")
