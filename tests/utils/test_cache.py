"""Cache-layer tests: LRU accounting, DiskCache crash safety, persistence."""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.utils.cache import (MISSING, DiskCache, LRUCache,
                               PersistentLRUCache)


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh "a"
        cache.put("c", 3)                   # evicts "b", not "a"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_accounting(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("missing") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert (cache.hits, cache.misses) == (1, 1)
        cache.put("none", None)
        assert cache.get("none") is None    # a cached None is a *hit*
        assert (cache.hits, cache.misses) == (2, 1)

    def test_eviction_keeps_size_bounded(self):
        cache = LRUCache(maxsize=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert set(cache._data) == {7, 8, 9}

    def test_put_existing_refreshes(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                  # refresh, not duplicate
        cache.put("c", 3)                   # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


def _hammer(args):
    directory, worker, rounds = args
    cache = DiskCache(directory)
    for i in range(rounds):
        # Every worker fights over the same small key space.
        cache.put(f"key{i % 4}", {"worker": worker, "round": i,
                                  "payload": list(range(200))})
        value = cache.get(f"key{i % 4}")
        # A concurrent write may race this read, but the value must always
        # be either a complete record or a miss — never a torn pickle.
        assert value is None or len(value["payload"]) == 200
    return worker


class TestDiskCache:
    def test_round_trip_and_contains(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("x", {"a": np.arange(3)})
        assert "x" in cache
        np.testing.assert_array_equal(cache.get("x")["a"], np.arange(3))
        assert cache.get("nope", 42) == 42

    def test_unsafe_keys_cannot_escape_directory(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        for key in ("../escape", "a/b/c", "..", "con?.txt", "x" * 300, ""):
            cache.put(key, key)
            assert cache.get(key) == key
            assert "escape" not in {p.name for p in tmp_path.iterdir()}
        # Everything landed inside the cache directory.
        for path in (tmp_path / "cache").iterdir():
            assert path.parent == tmp_path / "cache"
        # Distinct unsafe keys must not collide.
        cache.put("../a", 1)
        cache.put("../b", 2)
        assert cache.get("../a") == 1 and cache.get("../b") == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", "value")
        path = cache._path("k")
        path.write_bytes(pickle.dumps("value")[:3])   # torn write
        assert cache.get("k", "fallback") == "fallback"
        assert not path.exists()                      # corpse discarded
        cache.put("k", "again")                       # and the key reusable
        assert cache.get("k") == "again"

    def test_get_or_compute_caches_none(self, tmp_path):
        cache = DiskCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.get_or_compute("k", compute) is None
        assert cache.get_or_compute("k", compute) is None
        assert len(calls) == 1

    def test_no_leftover_tmp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(10):
            cache.put("k", i)
        assert not list(tmp_path.glob("*.tmp"))

    def test_concurrent_writers_never_produce_torn_pickles(self, tmp_path):
        workers = 4
        with multiprocessing.get_context("spawn").Pool(workers) as pool:
            done = pool.map(_hammer,
                            [(str(tmp_path), w, 25) for w in range(workers)])
        assert sorted(done) == list(range(workers))
        # After the dust settles every surviving entry is readable.
        cache = DiskCache(tmp_path)
        for i in range(4):
            value = cache.get(f"key{i}")
            assert value is not None and len(value["payload"]) == 200


class TestPersistentLRUCache:
    def test_write_through_and_restart_warm_start(self, tmp_path):
        cache = PersistentLRUCache(tmp_path, maxsize=8, generation="g1")
        cache.put("k", np.arange(4.0))
        # A "restarted node": fresh memory tier, same directory + generation.
        reborn = PersistentLRUCache(tmp_path, maxsize=8, generation="g1")
        np.testing.assert_array_equal(reborn.get("k"), np.arange(4.0))
        assert reborn.disk_hits == 1
        assert reborn.hits == 1 and reborn.misses == 0
        # Promoted entry now serves from memory.
        reborn.get("k")
        assert reborn.disk_hits == 1

    def test_generation_mismatch_invalidates_disk(self, tmp_path):
        cache = PersistentLRUCache(tmp_path, maxsize=8, generation="g1")
        cache.put("k", 1)
        stale = PersistentLRUCache(tmp_path, maxsize=8, generation="g2")
        assert stale.get("k", MISSING) is MISSING

    def test_set_generation_clears_both_tiers(self, tmp_path):
        cache = PersistentLRUCache(tmp_path, maxsize=8, generation="g1")
        cache.put("k", 1)
        cache.set_generation("g2")
        assert cache.get("k", MISSING) is MISSING
        cache.put("k", 2)
        # Same generation is a no-op (entries survive).
        cache.set_generation("g2")
        assert cache.get("k") == 2

    def test_straggler_old_generation_writer_cannot_poison(self, tmp_path):
        # Node A (old advisor, g1) and node B (retrained, g2) share one
        # cache directory; A keeps writing after B's GC.  B must never
        # serve A's old-encoder embeddings.
        node_a = PersistentLRUCache(tmp_path, maxsize=8, generation="g1")
        node_b = PersistentLRUCache(tmp_path, maxsize=8, generation="g2")
        node_a.put("fingerprint", "old-encoder-embedding")
        assert node_b.get("fingerprint", MISSING) is MISSING
        node_b.put("fingerprint", "new-encoder-embedding")
        assert node_b.get("fingerprint") == "new-encoder-embedding"

    def test_memory_tier_is_bounded_disk_is_not(self, tmp_path):
        cache = PersistentLRUCache(tmp_path, maxsize=2, generation="g")
        for i in range(6):
            cache.put(f"k{i}", i)
        assert len(cache.memory) == 2
        # Evicted entries are still served (from disk).
        assert cache.get("k0") == 0
        assert cache.disk_hits == 1


class TestDegradedStorage:
    """A cache that cannot persist (disk full, read-only dir) keeps serving,
    counts the lost writes, and warns exactly once."""

    def failing_replace(self, monkeypatch):
        import repro.utils.cache as cache_module

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module.os, "replace", explode)

    def test_failed_put_is_counted_and_warns_once(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path)
        self.failing_replace(monkeypatch)
        with pytest.warns(RuntimeWarning, match="degraded"):
            cache.put("k", 1)
        assert cache.put_failures == 1
        # Subsequent failures count silently (no warning spam).
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            cache.put("k", 2)
            cache.put("j", 3)
        assert cache.put_failures == 3
        # The entry was simply lost; reads see a miss, not an exception.
        assert cache.get("k", MISSING) is MISSING

    def test_failed_put_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path)
        self.failing_replace(monkeypatch)
        with pytest.warns(RuntimeWarning):
            cache.put("k", list(range(100)))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_layered_cache_surfaces_storage_failures(self, tmp_path,
                                                     monkeypatch):
        cache = PersistentLRUCache(tmp_path, maxsize=4, generation="g")
        assert cache.storage_failures == 0
        self.failing_replace(monkeypatch)
        with pytest.warns(RuntimeWarning):
            cache.put("k", 41)
        assert cache.storage_failures == 1
        # The memory tier still serves the value this process computed.
        assert cache.get("k") == 41
