"""Command-line interface: generate → label → train → recommend round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, PRESETS, build_parser, main
from repro.db.io import load_dataset, save_dataset


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_experiments_have_drivers(self):
        import importlib
        for name, (module_name, _) in EXPERIMENTS.items():
            module = importlib.import_module(f"repro.experiments.{module_name}")
            assert hasattr(module, "run"), name

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.seed is None
        assert args.out == "dataset.npz"

    def test_recommend_requires_advisor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "ds.npz"])


class TestGenerate:
    def test_random_dataset(self, tmp_path, capsys):
        out = str(tmp_path / "ds.npz")
        assert main(["generate", "--seed", "5", "--out", out]) == 0
        dataset = load_dataset(out)
        assert len(dataset.tables) >= 1
        assert "wrote" in capsys.readouterr().out

    def test_preset_dataset(self, tmp_path, capsys):
        out = str(tmp_path / "imdb.npz")
        assert main(["generate", "--preset", "imdb-light", "--out", out]) == 0
        dataset = load_dataset(out)
        assert len(dataset.tables) == 6  # Table I: IMDB-light has 6 tables

    def test_generate_is_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        main(["generate", "--seed", "9", "--out", a])
        main(["generate", "--seed", "9", "--out", b])
        da, db = load_dataset(a), load_dataset(b)
        assert da.table_names == db.table_names
        for name in da.table_names:
            for col in da[name].column_names:
                np.testing.assert_array_equal(da[name][col], db[name][col])

    def test_all_presets_generate(self, tmp_path):
        for preset in PRESETS:
            out = str(tmp_path / f"{preset}.npz")
            assert main(["generate", "--preset", preset, "--out", out]) == 0


class TestLabelAndRecommend:
    @pytest.fixture(scope="class")
    def dataset_file(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "ds.npz")
        main(["generate", "--seed", "3", "--out", path])
        return path

    @pytest.fixture(scope="class")
    def advisor_file(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli_train")
        advisor = str(tmp / "advisor.npz")
        cache = str(tmp / "cache")
        code = main(["train", "--corpus", "8", "--fast", "--out", advisor,
                     "--cache", cache])
        assert code == 0
        return advisor

    def test_label_prints_model_table(self, dataset_file, capsys):
        assert main(["label", dataset_file, "--fast"]) == 0
        out = capsys.readouterr().out
        assert "best model:" in out
        for model in ("BayesCard", "DeepDB", "MSCN", "LW-NN"):
            assert model in out

    def test_label_percentile_metric(self, dataset_file, capsys):
        assert main(["label", dataset_file, "--fast", "--metric", "p95",
                     "--weight", "0.5"]) == 0
        assert "p95" in capsys.readouterr().out

    def test_train_then_recommend(self, advisor_file, dataset_file, capsys):
        code = main(["recommend", dataset_file, "--advisor", advisor_file,
                     "--weight", "0.9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended model:" in out
        assert "ranking:" in out

    def test_recommend_with_custom_k(self, advisor_file, dataset_file, capsys):
        assert main(["recommend", dataset_file, "--advisor", advisor_file,
                     "--k", "1"]) == 0
        assert "recommended model:" in capsys.readouterr().out

    def test_serve_batch(self, advisor_file, dataset_file, tmp_path, capsys):
        other = str(tmp_path / "other.npz")
        main(["generate", "--seed", "11", "--out", other])
        code = main(["serve", dataset_file, other, "--advisor", advisor_file,
                     "--weight", "0.8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2 recommendations" in out
        assert "embedding cache (in-memory)" in out
        assert "neighbor search: exact" in out

    def test_serve_at_float32_tier(self, advisor_file, dataset_file, capsys):
        code = main(["serve", dataset_file, "--advisor", advisor_file,
                     "--dtype", "float32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 1 recommendations" in out
        assert "(float32 tier)" in out

    def test_serve_dtype_cast_preserves_recommendation(self, advisor_file,
                                                       dataset_file, capsys):
        assert main(["recommend", dataset_file, "--advisor",
                     advisor_file]) == 0
        recommended = [line for line in capsys.readouterr().out.splitlines()
                       if line.startswith("recommended model:")][0]
        model = recommended.split(":")[1].strip()
        assert main(["serve", dataset_file, "--advisor", advisor_file,
                     "--dtype", "float32"]) == 0
        assert f"-> {model}" in capsys.readouterr().out

    def test_serve_mixed_tier_with_int8_candidates(self, advisor_file,
                                                   dataset_file, capsys):
        assert main(["recommend", dataset_file, "--advisor",
                     advisor_file]) == 0
        recommended = [line for line in capsys.readouterr().out.splitlines()
                       if line.startswith("recommended model:")][0]
        model = recommended.split(":")[1].strip()
        code = main(["serve", dataset_file, "--advisor", advisor_file,
                     "--serving-dtype", "float32", "--quantize"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"-> {model}" in out
        assert "float32 tier over float64 weights" in out
        # The tiny CLI-test corpus sits below the quantization floor, so
        # the int8 tier stays detached — the flag must still be accepted
        # and reported truthfully.
        assert "int8 candidates" not in out

    def test_serve_quantize_accepts_a_layout_pin(self, advisor_file,
                                                 dataset_file, capsys):
        code = main(["serve", dataset_file, "--advisor", advisor_file,
                     "--serving-dtype", "float32", "--quantize", "pq"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 1 recommendations" in out
        # Below the attach floor the tier stays detached — the pinned
        # layout must still be accepted and reported truthfully.
        assert "pq candidates" not in out

    def test_serve_ivf_flag_attaches_the_ivf_tier(self, advisor_file,
                                                  dataset_file, tmp_path,
                                                  capsys):
        from repro.core.persistence import load_advisor, save_advisor
        from repro.core.predictor import QuantizationConfig

        # The shared CLI advisor sits below the default attach floor;
        # lower it so the --ivf knob has a corpus to partition.
        advisor = load_advisor(advisor_file)
        advisor.config.quantization = QuantizationConfig(
            enabled=False, mode="int8", min_size=4, ivf_min_size=4)
        low_floor = str(tmp_path / "advisor-low-floor.npz")
        save_advisor(advisor, low_floor)
        code = main(["serve", dataset_file, "--advisor", low_floor,
                     "--ivf", "4", "--nprobe", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 1 recommendations" in out
        assert "ivf-int8 candidates" in out

    def test_serve_quantize_rejects_an_unknown_layout(self, advisor_file,
                                                      dataset_file):
        with pytest.raises(SystemExit):
            main(["serve", dataset_file, "--advisor", advisor_file,
                  "--quantize", "product"])

    def test_serve_refuses_upcasting_a_float32_advisor(self, advisor_file,
                                                       dataset_file,
                                                       tmp_path):
        from repro.core.persistence import load_advisor, save_advisor

        advisor = load_advisor(advisor_file)
        advisor.set_dtype("float32")
        float32_file = str(tmp_path / "advisor32.npz")
        save_advisor(advisor, float32_file)
        with pytest.raises(ValueError, match="unrecoverable"):
            main(["serve", dataset_file, "--advisor", float32_file,
                  "--dtype", "float64"])

    def test_serve_warm_starts_from_cache_dir(self, advisor_file,
                                              dataset_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "serve-cache")
        args = ["serve", dataset_file, "--advisor", advisor_file,
                "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "0 hits / 1 misses" in cold
        # A fresh process (new load_advisor) serves the repeat from disk.
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "1 hits / 0 misses" in warm
        assert "(1 served from disk)" in warm


class TestModels:
    def test_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "BayesCard" in out and "FLAT" in out


class TestServeFaultTolerance:
    """`repro serve` robustness: readable failures, sharded serving with
    deadlines, daemon mode, and the degraded-storage report."""

    @pytest.fixture(scope="class")
    def dataset_files(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve_ds")
        paths = []
        for seed in (3, 4):
            path = str(tmp / f"ds{seed}.npz")
            main(["generate", "--seed", str(seed), "--out", path])
            paths.append(path)
        return paths

    @pytest.fixture(scope="class")
    def advisor_file(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve_train")
        advisor = str(tmp / "advisor.npz")
        code = main(["train", "--corpus", "8", "--fast", "--out", advisor,
                     "--cache", str(tmp / "cache")])
        assert code == 0
        return advisor

    def test_missing_advisor_is_a_readable_exit_2(self, dataset_files,
                                                  capsys):
        code = main(["serve", dataset_files[0],
                     "--advisor", "/nonexistent/advisor.npz"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot load advisor")
        assert "Traceback" not in captured.err

    def test_corrupt_advisor_is_a_readable_exit_2(self, dataset_files,
                                                  tmp_path, capsys):
        bad = tmp_path / "advisor.npz"
        bad.write_bytes(b"this is not an npz payload")
        code = main(["serve", dataset_files[0], "--advisor", str(bad)])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unusable_cache_dir_is_a_readable_exit_2(self, advisor_file,
                                                     dataset_files, tmp_path,
                                                     capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the cache dir should be")
        code = main(["serve", dataset_files[0], "--advisor", advisor_file,
                     "--cache-dir", str(blocker)])
        assert code == 2
        assert "cache dir" in capsys.readouterr().err

    def test_no_datasets_without_daemon_is_exit_2(self, advisor_file, capsys):
        code = main(["serve", "--advisor", advisor_file])
        assert code == 2
        assert "no datasets" in capsys.readouterr().err

    def test_sharded_serving_matches_in_process(self, advisor_file,
                                                dataset_files, capsys):
        assert main(["serve", *dataset_files, "--advisor", advisor_file]) == 0
        single = capsys.readouterr().out
        assert main(["serve", *dataset_files, "--advisor", advisor_file,
                     "--shards", "2", "--deadline-ms", "30000"]) == 0
        sharded = capsys.readouterr().out
        picks = lambda out: [line for line in out.splitlines()
                             if "->" in line]
        assert picks(sharded) == picks(single)
        assert "served 2 recommendations" in sharded
        assert "latency: p50" in sharded
        assert "shard 0:" in sharded and "shard 1:" in sharded
        assert "restarts=0" in sharded

    def test_latency_split_reports_degraded_separately(
            self, advisor_file, dataset_files, capsys, monkeypatch):
        """Regression: degraded (early-return) responses used to be pooled
        into the same percentiles as healthy ones, dragging p50/p95 down
        and masking healthy-path regressions."""
        from repro.serving.supervisor import ShardedServer

        real = ShardedServer.recommend_batch
        calls = {"n": 0}

        def degrade_first(self, datasets, **kwargs):
            recs = real(self, datasets, **kwargs)
            calls["n"] += 1
            if calls["n"] == 1:
                for rec in recs:
                    rec.degraded = True
                    rec.coverage = 0.5
            return recs

        monkeypatch.setattr(ShardedServer, "recommend_batch", degrade_first)
        code = main(["serve", *dataset_files, "--advisor", advisor_file,
                     "--shards", "2", "--deadline-ms", "30000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(1 degraded)" in out
        assert "latency (healthy): p50" in out
        assert "latency (degraded): p50" in out
        assert "latency: p50" not in out

    def test_daemon_serves_stdin_paths_and_reports_bad_ones(
            self, advisor_file, dataset_files, capsys, monkeypatch):
        import io

        lines = f"{dataset_files[0]}\n\n/no/such/dataset.npz\n{dataset_files[1]}\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        code = main(["serve", "--daemon", "--advisor", advisor_file,
                     "--shards", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "served 2 recommendations" in captured.out
        assert "/no/such/dataset.npz -> ERROR:" in captured.err

    def test_daemon_survives_corrupt_dataset_and_batches_bitforbit(
            self, advisor_file, dataset_files, tmp_path, capsys, monkeypatch):
        """The daemon stream: good paths, a missing path and a corrupt
        dataset file.  The process must survive all three, serve the good
        ones, and the coalesced batched answers must be bit-for-bit equal
        to a serial (--max-batch 1) run of the same stream."""
        import io

        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"not an npz payload at all")
        lines = (f"{dataset_files[0]}\n/no/such/dataset.npz\n{corrupt}\n"
                 f"{dataset_files[1]}\n{dataset_files[0]}\n")

        def run(*extra):
            monkeypatch.setattr("sys.stdin", io.StringIO(lines))
            code = main(["serve", "--daemon", "--advisor", advisor_file,
                         *extra])
            assert code == 0
            return capsys.readouterr()

        serial = run("--max-batch", "1", "--batch-window-ms", "0")
        coalesced = run()
        picks = lambda out: [line for line in out.splitlines()
                             if "->" in line and "ERROR" not in line]
        assert picks(coalesced.out) == picks(serial.out)
        assert len(picks(coalesced.out)) == 3
        for captured in (serial, coalesced):
            assert "served 3 recommendations" in captured.out
            assert "/no/such/dataset.npz -> ERROR:" in captured.err
            assert f"{corrupt} -> ERROR:" in captured.err
            assert "Traceback" not in captured.err

    def test_degraded_storage_is_reported(self, advisor_file, dataset_files,
                                          tmp_path, capsys, monkeypatch):
        import repro.utils.cache as cache_module

        real_replace = cache_module.os.replace

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module.os, "replace", explode)
        with pytest.warns(RuntimeWarning, match="degraded"):
            code = main(["serve", dataset_files[0], "--advisor", advisor_file,
                         "--cache-dir", str(tmp_path / "cache")])
        monkeypatch.setattr(cache_module.os, "replace", real_replace)
        assert code == 0
        assert "degraded storage:" in capsys.readouterr().out
