"""Property-based equivalence harness for the fast paths and precision tiers.

Every test class asserts one *property* over a family of randomized inputs —
fast-path vs reference featurization, float32 vs float64 GIN/loss/optimizer
agreement at dtype-appropriate tolerances, serving-kernel identities — with
the corpus generator seeded per case.  A failing case's seed appears in the
pytest id (e.g. ``test_featurize_matches_reference[17]``), so any failure is
reproduced by running that single id; no state leaks between cases.

The randomized corpora deliberately include the ugly shapes production
featurization meets: tables with zero rows, zero data columns, constant
columns, single-value domains, and (at the kernel level) NaN-bearing float
columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.dml import DMLConfig, DMLTrainer
from repro.core.encoder import GINEncoder
from repro.core.features import column_features, column_features_matrix
from repro.core.graph import (FeatureGraph, GraphTensorBatcher,
                              build_feature_graph,
                              build_feature_graph_reference)
from repro.core.losses import (basic_contrastive_loss,
                               cosine_similarity_matrix,
                               weighted_contrastive_loss)
from repro.core.predictor import (exact_search, squared_distance_matrix,
                                  top_k_neighbors)
from repro.db.schema import Dataset, ForeignKey
from repro.db.table import Table
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


# ----------------------------------------------------------------------
# Randomized corpus generators (all derive from one integer seed)
# ----------------------------------------------------------------------
def random_table(rng: np.random.Generator, name: str,
                 allow_empty: bool = True) -> Table:
    """A table with randomized width/rows, including degenerate shapes."""
    choices = [0, 1, 3, 40, 120] if allow_empty else [1, 3, 40, 120]
    rows = int(rng.choice(choices))
    columns = {"pk": np.arange(rows, dtype=np.int64)}
    for c in range(int(rng.integers(0, 7))):
        kind = rng.integers(0, 4)
        if kind == 0:        # constant column
            values = np.full(rows, int(rng.integers(-5, 50)))
        elif kind == 1:      # tiny domain (heavy ties)
            values = rng.integers(0, 3, size=rows)
        elif kind == 2:      # skewed wide domain
            values = (rng.pareto(1.5, size=rows) * 10).astype(np.int64)
        else:                # plain uniform
            values = rng.integers(-100, 100, size=rows)
        columns[f"col{c}"] = values.astype(np.int64)
    return Table(name, columns)


def random_dataset(seed: int) -> Dataset:
    """1–4 randomized tables joined by a random PK–FK forest."""
    rng = np.random.default_rng(1_000_003 * seed + 17)
    num_tables = int(rng.integers(1, 5))
    tables = [random_table(rng, f"t{i}", allow_empty=i > 0)
              for i in range(num_tables)]
    foreign_keys = []
    for i in range(1, num_tables):
        parent = tables[int(rng.integers(0, i))]
        child = tables[i]
        if parent.num_rows == 0 or child.num_rows == 0 or rng.random() < 0.3:
            continue
        fk = rng.integers(0, parent.num_rows, size=child.num_rows)
        child.columns[f"fk_{parent.name}"] = fk.astype(np.int64)
        foreign_keys.append(ForeignKey(child=child.name,
                                       fk_column=f"fk_{parent.name}",
                                       parent=parent.name))
    return Dataset(f"prop{seed}", tables, foreign_keys)


def random_graph_corpus(seed: int, n: int = 10, dim: int = 12):
    """Random feature graphs + labels for GIN/loss/training properties."""
    rng = np.random.default_rng(7_654_321 * seed + 5)
    graphs, labels = [], []
    for i in range(n):
        tables = int(rng.integers(1, 6))
        vertices = rng.normal(size=(tables, dim))
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            if rng.random() < 0.8:
                edges[t - 1, t] = rng.uniform(0.1, 1.0)
        graphs.append(FeatureGraph(f"s{seed}g{i}", vertices, edges))
        labels.append(DatasetLabel(MODELS, rng.uniform(1, 10, 3),
                                   rng.uniform(0.001, 0.01, 3)))
    return graphs, labels


def rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(float(np.linalg.norm(a)), 1e-12)
    return float(np.linalg.norm(np.asarray(a, dtype=np.float64)
                                - np.asarray(b, dtype=np.float64))) / scale


# ----------------------------------------------------------------------
# Featurization: fast path == scalar reference on randomized datasets
# ----------------------------------------------------------------------
class TestFeaturizationProperties:
    @pytest.mark.parametrize("seed", range(14))
    def test_featurize_matches_reference(self, seed):
        dataset = random_dataset(seed)
        fast = build_feature_graph(dataset)
        reference = build_feature_graph_reference(dataset)
        np.testing.assert_allclose(
            fast.vertices, reference.vertices, rtol=1e-14, atol=1e-15,
            err_msg=f"reproduce with random_dataset({seed})")
        np.testing.assert_array_equal(fast.edges, reference.edges)

    @pytest.mark.parametrize("seed", range(10))
    def test_column_kernel_matches_scalar_with_nan(self, seed):
        """The vectorized kernel agrees with the per-column loop even on
        float inputs with NaN and constant rows (NaN counts once in the
        domain, statistics propagate NaN identically)."""
        rng = np.random.default_rng(31 * seed + 2)
        m, r = int(rng.integers(1, 7)), int(rng.choice([1, 2, 30, 80]))
        matrix = rng.normal(size=(m, r)) * 10
        for row in range(m):
            kind = rng.integers(0, 3)
            if kind == 0:
                matrix[row] = matrix[row, 0]          # constant row
            elif kind == 1 and r > 1:
                nans = rng.random(r) < 0.3            # NaN-bearing row
                matrix[row, nans] = np.nan
        expected = np.stack([column_features(row) for row in matrix])
        np.testing.assert_allclose(
            column_features_matrix(matrix), expected, rtol=1e-14, atol=1e-15,
            err_msg=f"reproduce with seed {seed}")

    def test_empty_and_single_row_matrices(self):
        np.testing.assert_array_equal(
            column_features_matrix(np.zeros((4, 0))), np.zeros((4, 6)))
        one = np.array([[7.0]])
        np.testing.assert_allclose(column_features_matrix(one),
                                   column_features(one[0])[None, :])


# ----------------------------------------------------------------------
# GIN forward: float32 tier tracks the float64 reference
# ----------------------------------------------------------------------
class TestGINPrecisionProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_forward_agreement(self, seed):
        graphs, _ = random_graph_corpus(seed, n=8)
        e64 = GINEncoder(12, hidden_dim=16, embedding_dim=8, seed=seed)
        e32 = GINEncoder(12, hidden_dim=16, embedding_dim=8, seed=seed,
                         dtype=np.float32)
        out64 = e64.embed(graphs)
        out32 = e32.embed(graphs)
        assert out64.dtype == np.float64 and out32.dtype == np.float32
        assert rel_diff(out64, out32) < 1e-5, \
            f"float32 forward diverged (seed {seed})"

    @pytest.mark.parametrize("seed", range(6))
    def test_backward_agreement(self, seed):
        """Loss gradients through the full fused GIN stack agree across
        tiers (ReLU-kink flips are measure-zero for continuous inputs)."""
        graphs, labels = random_graph_corpus(seed, n=6)
        sims = cosine_similarity_matrix(np.stack(
            [label.score_vector(0.9) for label in labels]))
        grads = []
        for dtype in (np.float64, np.float32):
            encoder = GINEncoder(12, hidden_dim=16, embedding_dim=8,
                                 seed=seed, dtype=dtype)
            batcher = GraphTensorBatcher(graphs, dtype=encoder.dtype)
            out = encoder.forward_adjacency(batcher.vertices,
                                            batcher.adjacency, batcher.mask)
            loss = weighted_contrastive_loss(out, sims, tau=0.8)
            assert loss.data.dtype == dtype
            encoder.zero_grad()
            loss.backward()
            grads.append(np.concatenate(
                [param.grad.ravel().astype(np.float64)
                 for param in encoder.parameters()]))
        assert rel_diff(grads[0], grads[1]) < 1e-3, \
            f"float32 gradients diverged (seed {seed})"

    @pytest.mark.parametrize("seed", range(4))
    def test_one_epoch_training_agreement(self, seed):
        """A full DML epoch (tensor cache, fused loss, fused Adam) lands on
        the same loss and embeddings at float32 resolution."""
        graphs, labels = random_graph_corpus(seed, n=16)
        history, embeddings = [], []
        for dtype in ("float64", "float32"):
            encoder = GINEncoder(12, hidden_dim=16, embedding_dim=8,
                                 seed=seed, dtype=np.dtype(dtype))
            trainer = DMLTrainer(encoder, DMLConfig(
                epochs=2, batch_size=8, seed=seed))
            history.append(trainer.train(graphs, labels))
            embeddings.append(encoder.embed(graphs))
        assert rel_diff(np.array(history[0]), np.array(history[1])) < 1e-5, \
            f"loss history diverged (seed {seed})"
        assert rel_diff(embeddings[0], embeddings[1]) < 1e-4, \
            f"trained embeddings diverged (seed {seed})"


# ----------------------------------------------------------------------
# DML losses: tier agreement for both loss variants
# ----------------------------------------------------------------------
class TestLossPrecisionProperties:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("loss_fn", [weighted_contrastive_loss,
                                         basic_contrastive_loss])
    def test_loss_value_and_grad_agreement(self, seed, loss_fn):
        rng = np.random.default_rng(97 * seed + 13)
        m = int(rng.integers(3, 12))
        embeddings = rng.normal(size=(m, 8))
        sims = cosine_similarity_matrix(rng.uniform(0.1, 1.0, size=(m, 3)))
        values, grads = [], []
        for dtype in (np.float64, np.float32):
            x = nn.Tensor(embeddings.astype(dtype), requires_grad=True)
            loss = loss_fn(x, sims, tau=0.7, gamma=2.0)
            assert loss.data.dtype == dtype
            loss.backward()
            values.append(float(loss.item()))
            grads.append(x.grad)
        assert abs(values[0] - values[1]) <= 1e-5 * max(1.0, abs(values[0])), \
            f"loss value diverged (seed {seed})"
        assert rel_diff(grads[0], grads[1]) < 1e-3, \
            f"loss gradient diverged (seed {seed})"


# ----------------------------------------------------------------------
# Optimizer: fused float32 Adam tracks float64
# ----------------------------------------------------------------------
class TestAdamPrecisionProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_steps_agree(self, seed):
        rng = np.random.default_rng(11 * seed + 7)
        shapes = [(5, 3), (3,), (4, 4)]
        datas = [rng.normal(size=shape) for shape in shapes]
        step_grads = [[rng.normal(size=shape) for shape in shapes]
                      for _ in range(3)]
        results = []
        for dtype in (np.float64, np.float32):
            params = [nn.Tensor(d.astype(dtype), requires_grad=True)
                      for d in datas]
            optimizer = nn.Adam(params, lr=1e-2)
            for grads in step_grads:
                for param, grad in zip(params, grads):
                    param.grad = grad.astype(dtype)
                optimizer.step(grad_clip=1.0)
            assert all(p.data.dtype == dtype for p in params)
            results.append(np.concatenate(
                [p.data.ravel().astype(np.float64) for p in params]))
        assert rel_diff(results[0], results[1]) < 1e-4, \
            f"Adam diverged across tiers (seed {seed})"


# ----------------------------------------------------------------------
# Serving kernels: dtype preservation + identities under ties
# ----------------------------------------------------------------------
class TestServingKernelProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_distance_matrix_identity_and_dtype(self, seed):
        rng = np.random.default_rng(41 * seed + 3)
        a = rng.normal(size=(int(rng.integers(1, 9)), 5))
        b = rng.normal(size=(int(rng.integers(1, 20)), 5))
        direct = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(squared_distance_matrix(a, b), direct,
                                   rtol=1e-9, atol=1e-9,
                                   err_msg=f"seed {seed}")
        sq32 = squared_distance_matrix(a.astype(np.float32),
                                       b.astype(np.float32))
        assert sq32.dtype == np.float32
        np.testing.assert_allclose(sq32, direct, rtol=1e-4, atol=1e-4)
        # Mixed tiers meet at float64.
        assert squared_distance_matrix(
            a.astype(np.float32), b).dtype == np.float64

    @pytest.mark.parametrize("seed", range(6))
    def test_top_k_matches_stable_argsort_under_ties(self, seed):
        rng = np.random.default_rng(59 * seed + 1)
        distances = rng.integers(0, 4, size=(30, 25)).astype(np.float32)
        for k in (1, 3, 25):
            np.testing.assert_array_equal(
                top_k_neighbors(distances, k),
                np.argsort(distances, axis=1, kind="stable")[:, :k],
                err_msg=f"seed {seed} k={k}")

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_search_float32_agreement(self, seed):
        rng = np.random.default_rng(71 * seed + 9)
        members = rng.normal(size=(50, 6))
        queries = rng.normal(size=(7, 6))
        i64, d64 = exact_search(queries, members, 4)
        i32, d32 = exact_search(queries.astype(np.float32),
                                members.astype(np.float32), 4)
        assert d32.dtype == np.float32
        # Neighbor sets agree except across float32-resolution distance
        # ties; distances agree at float32 tolerance everywhere.
        np.testing.assert_allclose(d64, d32.astype(np.float64),
                                   rtol=1e-4, atol=1e-5,
                                   err_msg=f"seed {seed}")
        agree = np.mean([len(set(a) & set(b)) / 4 for a, b in zip(i64, i32)])
        assert agree == 1.0, f"float32 neighbors diverged (seed {seed})"
