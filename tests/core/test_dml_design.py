"""The DML design knobs: tau policy and similarity target."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dml import DMLConfig, DMLTrainer
from repro.core.encoder import GINEncoder
from repro.core.graph import FeatureGraph
from repro.core.losses import cosine_similarity_matrix
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def tiny_corpus(n=12, dim=8, seed=1):
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        kind = i % 2
        vertices = rng.normal(size=(2, dim)) * 0.2
        vertices[:, 0] += 2.0 if kind else -2.0
        graphs.append(FeatureGraph(f"g{i}", vertices, np.zeros((2, 2))))
        qerr = [1.1, 4.0, 8.0] if kind else [8.0, 4.0, 1.1]
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    return graphs, labels


def make_trainer(**kwargs) -> DMLTrainer:
    encoder = GINEncoder(vertex_dim=8, hidden_dim=12, embedding_dim=6, seed=0)
    return DMLTrainer(encoder, DMLConfig(epochs=3, batch_size=6, seed=0,
                                         **kwargs))


class TestConfigValidation:
    def test_unknown_tau_mode_rejected(self):
        with pytest.raises(ValueError, match="tau_mode"):
            make_trainer(tau_mode="sometimes")

    def test_unknown_similarity_rejected(self):
        with pytest.raises(ValueError, match="similarity"):
            make_trainer(similarity="vibes")

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError, match="loss"):
            make_trainer(loss="hinge^2")


class TestEffectiveTau:
    def test_fixed_mode_returns_config_tau(self):
        trainer = make_trainer(tau_mode="fixed", tau=0.42)
        sims = np.array([[1.0, 0.9], [0.9, 1.0]])
        assert trainer._effective_tau(sims) == 0.42

    def test_quantile_mode_tracks_batch(self):
        trainer = make_trainer(tau_mode="quantile", tau_quantile=0.5)
        sims = np.array([[1.0, 0.2, 0.4],
                         [0.2, 1.0, 0.6],
                         [0.4, 0.6, 1.0]])
        # Off-diagonal values: [0.2, 0.4, 0.2, 0.6, 0.4, 0.6]; median = 0.4.
        assert trainer._effective_tau(sims) == pytest.approx(0.4)

    def test_quantile_never_degenerate(self):
        """Even near-identical similarities split into both classes."""
        trainer = make_trainer(tau_mode="quantile", tau_quantile=0.7)
        rng = np.random.default_rng(0)
        sims = np.clip(0.97 + rng.normal(0, 0.005, (16, 16)), -1, 1)
        sims = (sims + sims.T) / 2
        np.fill_diagonal(sims, 1.0)
        tau = trainer._effective_tau(sims)
        off = sims[~np.eye(16, dtype=bool)]
        positives = float(np.mean(off >= tau))
        assert 0.05 < positives < 0.6


class TestProfileVectors:
    def test_shape_covers_weight_grid(self):
        graphs, labels = tiny_corpus()
        trainer = make_trainer()
        profiles = trainer._profile_vectors(labels)
        expected_dim = len(trainer.config.weights) * len(MODELS)
        assert profiles.shape == (len(labels), expected_dim)

    def test_identical_labels_identical_profiles(self):
        graphs, labels = tiny_corpus()
        trainer = make_trainer()
        clone = DatasetLabel(MODELS, labels[0].qerror_means,
                             labels[0].latency_means)
        profiles = trainer._profile_vectors([labels[0], clone])
        np.testing.assert_allclose(profiles[0], profiles[1])

    def test_profile_similarity_separates_label_classes(self):
        graphs, labels = tiny_corpus()
        trainer = make_trainer()
        profiles = trainer._profile_vectors(labels)
        sims = cosine_similarity_matrix(profiles)
        same = sims[0, 2]   # both kind-0
        different = sims[0, 1]  # kind-0 vs kind-1
        assert same > different


class TestTrainingRuns:
    @pytest.mark.parametrize("tau_mode", ["fixed", "quantile"])
    @pytest.mark.parametrize("similarity", ["profile", "weight_cycle"])
    def test_all_variants_train(self, tau_mode, similarity):
        graphs, labels = tiny_corpus()
        trainer = make_trainer(tau_mode=tau_mode, similarity=similarity)
        history = trainer.train(graphs, labels)
        assert len(history) == 3
        assert all(np.isfinite(h) for h in history)

    def test_profile_mode_learns_separation(self):
        graphs, labels = tiny_corpus(n=16)
        encoder = GINEncoder(vertex_dim=8, hidden_dim=16, embedding_dim=6,
                             seed=0)
        trainer = DMLTrainer(encoder, DMLConfig(
            epochs=25, batch_size=8, seed=0, similarity="profile"))
        trainer.train(graphs, labels)
        emb = encoder.embed(graphs)
        kinds = np.array([i % 2 for i in range(len(graphs))])
        dist = np.sqrt(((emb[:, None] - emb[None, :]) ** 2).sum(-1))
        same = dist[kinds[:, None] == kinds[None, :]].mean()
        different = dist[kinds[:, None] != kinds[None, :]].mean()
        assert different > same
