"""Property tests for the product-quantization candidate tier (:class:`PQStore`).

Each class pins one property of the PQ tier over seeded randomized
embedding clouds: bit-identical codebooks from the same RNG (the CI
determinism contract), the ADC reconstruction-error bound against exact
distances, a ranking-correlation floor (Kendall tau) on the overfetch
candidate pool, degenerate corpora (constant columns, corpora smaller
than the codebook), drift-triggered recalibration, the
:func:`select_quantizer` width rule, and the overfetch edge — for flat
int8 and PQ alike — where ``k · overfetch ≥ N`` must degrade to the
plain float scan with no duplicate or missing candidates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import (ANNConfig, ANNIndex, E2LSHConfig,
                                  E2LSHIndex, INT8_EXACT_MAX_DIM, PQStore,
                                  QuantizationConfig, QuantizedStore,
                                  RecommendationCandidateSet, candidate_scan,
                                  exact_search, seeded_kmeans,
                                  select_quantizer)
from repro.testbed.scores import ScoreLabel

SEEDS = range(6)


def family_cloud(seed: int, families: int = 40, per_family: int = 6,
                 dim: int = 48, spread: float = 8.0,
                 noise: float = 0.5) -> np.ndarray:
    """A family-structured wide cloud (the regime PQ serves)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(families, dim)) * spread
    return (centers[:, None, :]
            + noise * rng.normal(size=(families, per_family, dim))
            ).reshape(-1, dim)


def pq_config(**overrides) -> QuantizationConfig:
    base = dict(enabled=True, mode="pq", num_subspaces=8, codebook_size=32,
                min_size=16, overfetch=4)
    base.update(overrides)
    return QuantizationConfig(**base)


def kendall_tau(a: np.ndarray, b: np.ndarray) -> float:
    """Tau-a over all pairs (ties count as neither concordant nor not)."""
    iu = np.triu_indices(len(a), 1)
    s = (np.sign(a[:, None] - a[None, :])
         * np.sign(b[:, None] - b[None, :]))[iu]
    return float(s.sum() / len(s))


class TestSeededKMeansDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_rng_gives_bit_identical_codebooks_and_codes(self, seed):
        emb = family_cloud(seed)
        a = PQStore(emb, pq_config(seed=seed))
        b = PQStore(emb, pq_config(seed=seed))
        for ca, cb in zip(a.codebooks, b.codebooks):
            np.testing.assert_array_equal(ca, cb)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_array_equal(a.reconstruct(), b.reconstruct())

    def test_recalibrate_reproduces_the_construction_state(self):
        emb = family_cloud(0)
        store = PQStore(emb, pq_config())
        codes = store.codes.copy()
        books = [c.copy() for c in store.codebooks]
        store.recalibrate(emb)
        np.testing.assert_array_equal(store.codes, codes)
        for before, after in zip(books, store.codebooks):
            np.testing.assert_array_equal(before, after)

    def test_kmeans_with_fewer_rows_than_centroids_duplicates_head(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 4))
        centroids = seeded_kmeans(x, 16, np.random.default_rng(1), 8)
        # Every distinct row earns a centroid; the overflow duplicates
        # deterministically instead of crashing or going random.
        assert len(centroids) == 5
        again = seeded_kmeans(x, 16, np.random.default_rng(1), 8)
        np.testing.assert_array_equal(centroids, again)

    def test_kmeans_duplicate_rows_break_ties_deterministically(self):
        x = np.tile(np.arange(3.0)[:, None], (4, 2))   # 12 rows, 3 distinct
        a = seeded_kmeans(x, 8, np.random.default_rng(3), 8)
        b = seeded_kmeans(x, 8, np.random.default_rng(3), 8)
        np.testing.assert_array_equal(a, b)


class TestADCReconstructionBound:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_adc_distance_error_is_bounded_by_reconstruction_error(
            self, seed):
        """``adc + ‖q‖²`` is exactly ``‖q − x̂‖²`` (up to float32), so by
        the triangle inequality the ADC distance can differ from the true
        distance by at most the member's reconstruction error."""
        emb = family_cloud(seed)
        store = PQStore(emb, pq_config(seed=seed))
        queries = emb[::7] + 0.1
        adc = store.adc_distances(queries).astype(np.float64)
        qnorm = (queries * queries).sum(axis=1)
        adc_dist = np.sqrt(np.maximum(adc + qnorm[:, None], 0.0))
        true_dist = np.sqrt(
            ((queries[:, None, :] - emb[None, :, :]) ** 2).sum(axis=2))
        recon_err = np.sqrt(
            ((emb - store.reconstruct()) ** 2).sum(axis=1))
        slack = 1e-3 * (1.0 + true_dist.max())   # float32 table rounding
        assert (np.abs(adc_dist - true_dist)
                <= recon_err[None, :] + slack).all()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_residual_refinement_reduces_reconstruction_error(self, seed):
        emb = family_cloud(seed)
        plain = PQStore(emb, pq_config(seed=seed))
        refined = PQStore(emb, pq_config(seed=seed, residual=True))
        err = ((emb - plain.reconstruct()) ** 2).sum()
        err_refined = ((emb - refined.reconstruct()) ** 2).sum()
        assert err_refined < err

    def test_residual_search_matches_exact_on_separated_clouds(self):
        emb = family_cloud(1, spread=30.0, noise=0.2)
        store = PQStore(emb, pq_config(seed=1, residual=True))
        queries = emb[::5] + 0.05
        qi, qd = store.search(queries, emb, 5)
        ei, ed = exact_search(queries, emb, 5)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_allclose(qd, ed, rtol=1e-6, atol=1e-9)


class TestRankingCorrelation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kendall_tau_floor_on_the_overfetch_pool(self, seed):
        """The ADC ordering of each query's top ``k · overfetch``
        candidates must correlate with the exact ordering — the ranking-
        fidelity contract a candidate tier is actually serving under."""
        emb = family_cloud(seed)
        config = pq_config(seed=seed)
        store = PQStore(emb, config)
        queries = emb[::11] + 0.2
        adc = store.adc_distances(queries)
        true_sq = ((queries[:, None, :] - emb[None, :, :]) ** 2).sum(axis=2)
        pool = 5 * config.overfetch
        taus = []
        for q in range(len(queries)):
            candidates = np.argpartition(adc[q], pool - 1)[:pool]
            taus.append(kendall_tau(adc[q][candidates],
                                    true_sq[q][candidates]))
        assert np.mean(taus) >= 0.5
        assert min(taus) > 0.0

    def test_search_matches_exact_on_separated_clouds(self):
        emb = family_cloud(2, spread=30.0, noise=0.2)
        store = PQStore(emb, pq_config(seed=2))
        queries = emb[::5] + 0.05
        qi, qd = store.search(queries, emb, 5)
        ei, ed = exact_search(queries, emb, 5)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_allclose(qd, ed, rtol=1e-6, atol=1e-9)


class TestDegenerateCorpora:
    def test_constant_columns_encode_and_search(self):
        emb = family_cloud(3)
        emb[:, ::3] = 7.25                       # a third of the dims frozen
        store = PQStore(emb, pq_config(seed=3))
        recon = store.reconstruct()
        np.testing.assert_allclose(recon[:, ::3], 7.25, atol=1e-9)
        qi, _ = store.search(emb[:4] + 0.01, emb, 3)
        ei, _ = exact_search(emb[:4] + 0.01, emb, 3)
        np.testing.assert_array_equal(qi, ei)

    def test_corpus_smaller_than_codebook_reconstructs_exactly(self):
        emb = family_cloud(4)[:10]
        store = PQStore(emb, pq_config(seed=4, codebook_size=256,
                                       min_size=2, overfetch=1))
        # Ten distinct rows, 256 centroids: every row earns its own
        # centroid and the reconstruction is exact.
        np.testing.assert_allclose(store.reconstruct(), emb,
                                   rtol=1e-12, atol=1e-9)
        qi, _ = store.search(emb[:3] + 0.01, emb, 2)
        ei, _ = exact_search(emb[:3] + 0.01, emb, 2)
        np.testing.assert_array_equal(qi, ei)

    def test_constant_corpus_serves_below_min_size(self):
        emb = np.full((32, 40), 7.25)
        store = PQStore(emb, pq_config(min_size=64))
        idx, dist = store.search(emb[:4], emb, 3)
        np.testing.assert_array_equal(idx, [[0, 1, 2]] * 4)
        np.testing.assert_array_equal(dist, 0.0)

    def test_single_member_rcs(self):
        emb = family_cloud(5)[:1]
        store = PQStore(emb, pq_config(min_size=1, overfetch=1))
        idx, dist = store.search(emb, emb, 5)
        np.testing.assert_array_equal(idx, [[0]])
        np.testing.assert_allclose(dist, 0.0, atol=1e-9)

    def test_empty_store_grows_via_add(self):
        store = PQStore(np.zeros((0, 16)), pq_config())
        assert len(store) == 0
        emb = family_cloud(0, dim=16)[:12]
        for row in emb:
            store.add(row)
        assert len(store) == 12

    def test_narrow_embedding_clips_subspace_count(self):
        emb = family_cloud(0, dim=3)
        store = PQStore(emb, pq_config(num_subspaces=16))
        assert store.num_subspaces == 3
        assert store.codes.shape == (len(emb), 3)


class TestDriftRecalibration:
    def test_in_range_adds_do_not_trigger_recalibration(self):
        emb = family_cloud(0)
        store = PQStore(emb, pq_config())
        for row in emb[:50]:
            assert not store.add(row)
        assert len(store) == len(emb) + 50

    def test_gross_outlier_triggers_immediately(self):
        emb = family_cloud(0)
        store = PQStore(emb, pq_config())
        span = emb.max() - emb.min()
        assert store.add(emb[0] + 50.0 * span)

    def test_accumulated_high_error_rows_trigger(self):
        """Rows above the calibration-time error ceiling accumulate toward
        the clip-fraction threshold instead of each triggering alone."""
        emb = family_cloud(0, spread=2.0, noise=0.1)
        config = pq_config(drift_clip_fraction=0.1,
                           drift_outlier_factor=1e9)
        store = PQStore(emb, config)
        for row in emb[:50]:
            assert not store.add(row)
        rng = np.random.default_rng(9)
        # Far enough off the family manifold to beat the calibration error.
        odd = emb[0] + 3.0 * rng.normal(size=emb.shape[1])
        verdicts = [store.add(odd) for _ in range(6)]
        assert verdicts[:5] == [False] * 5
        assert verdicts[5]

    def test_recalibrate_restores_the_error_envelope(self):
        emb = family_cloud(0)
        store = PQStore(emb, pq_config())
        grown = np.vstack([emb, emb * 4.0])
        store.recalibrate(grown)
        err = np.sqrt(((grown - store.reconstruct()) ** 2).sum(axis=1))
        assert len(store) == len(grown)
        assert err.max() <= store._err_scale * (1 + 1e-9)

    def test_rcs_add_recalibrates_the_pq_store_on_drift(self):
        emb = family_cloud(0, dim=24)
        labels = [ScoreLabel(("A", "B"), np.array([1.0, 0.5]),
                             np.array([0.5, 1.0])) for _ in range(len(emb))]
        rcs = RecommendationCandidateSet(
            emb, labels, quantization=pq_config(num_subspaces=4))
        assert isinstance(rcs.quantized, PQStore)
        drifted = emb[0] + 100.0 * (emb.max() - emb.min())
        rcs.add(drifted, labels[0])
        store = rcs.quantized
        assert len(store) == len(rcs)
        # Recalibration folded the drifted row into the codebooks: its
        # reconstruction now sits inside the refreshed error envelope.
        err = np.sqrt(((rcs.embeddings - store.reconstruct()) ** 2)
                      .sum(axis=1))
        assert err.max() <= store._err_scale * (1 + 1e-9)


class TestSelectQuantizer:
    def test_auto_picks_int8_up_to_the_exactness_bound(self):
        rng = np.random.default_rng(0)
        config = QuantizationConfig(enabled=True)
        at_bound = select_quantizer(
            rng.normal(size=(20, INT8_EXACT_MAX_DIM)), config)
        assert isinstance(at_bound, QuantizedStore)
        past_bound = select_quantizer(
            rng.normal(size=(20, INT8_EXACT_MAX_DIM + 1)), config)
        assert isinstance(past_bound, PQStore)

    def test_mode_pins_override_the_width_rule(self):
        rng = np.random.default_rng(0)
        wide = rng.normal(size=(20, 300))
        narrow = rng.normal(size=(20, 16))
        assert isinstance(
            select_quantizer(wide, QuantizationConfig(mode="int8")),
            QuantizedStore)
        assert isinstance(
            select_quantizer(narrow, QuantizationConfig(mode="pq")),
            PQStore)

    def test_unknown_mode_fails_at_configuration_time(self):
        with pytest.raises(ValueError, match="quantization mode"):
            QuantizationConfig(mode="PQ")     # wrong case must not crash late

    def test_oversized_codebook_fails_at_configuration_time(self):
        with pytest.raises(ValueError, match="codebook_size"):
            QuantizationConfig(codebook_size=257)

    def test_rcs_attaches_pq_for_wide_embeddings(self):
        emb = family_cloud(0, dim=INT8_EXACT_MAX_DIM + 40)
        labels = [ScoreLabel(("A", "B"), np.array([1.0, 0.5]),
                             np.array([0.5, 1.0])) for _ in range(len(emb))]
        rcs = RecommendationCandidateSet(
            emb, labels, quantization=QuantizationConfig(enabled=True,
                                                         min_size=8))
        assert isinstance(rcs.quantized, PQStore)

    def test_set_quantization_swaps_the_layout(self):
        emb = family_cloud(0, dim=24)
        labels = [ScoreLabel(("A", "B"), np.array([1.0, 0.5]),
                             np.array([0.5, 1.0])) for _ in range(len(emb))]
        rcs = RecommendationCandidateSet(
            emb, labels,
            quantization=QuantizationConfig(enabled=True, min_size=8))
        assert isinstance(rcs.quantized, QuantizedStore)
        rcs.set_quantization(pq_config(num_subspaces=4, min_size=8))
        assert isinstance(rcs.quantized, PQStore)
        rcs.set_quantization(None)
        assert rcs.quantized is None


class TestOverfetchEdge:
    """``k · overfetch ≥ N`` must degrade to the full float re-rank —
    indices and distances bit-equal to :func:`exact_search`, every row
    free of duplicate or missing candidates — for flat int8 and PQ alike.
    """

    @staticmethod
    def _stores(emb):
        config = QuantizationConfig(enabled=True, min_size=4, overfetch=8)
        pq = pq_config(min_size=4, overfetch=8, num_subspaces=4,
                       codebook_size=16)
        return (QuantizedStore(emb, config), PQStore(emb, pq))

    @pytest.mark.parametrize("kind", ["int8", "pq"])
    @pytest.mark.parametrize("k", [8, 20, 64])
    def test_pool_covering_the_corpus_degrades_to_exact(self, kind, k):
        emb = family_cloud(0, families=16, per_family=4, dim=24)  # N = 64
        store = dict(zip(("int8", "pq"), self._stores(emb)))[kind]
        assert k * store.config.overfetch >= len(emb)
        queries = emb[::9] + 0.01
        qi, qd = store.search(queries, emb, k)
        ei, ed = exact_search(queries, emb, k)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_array_equal(qd, ed)
        for row in qi:
            assert len(set(row.tolist())) == min(k, len(emb))

    @pytest.mark.parametrize("kind", ["int8", "pq"])
    def test_candidate_scan_honors_the_edge(self, kind):
        emb = family_cloud(1, families=12, per_family=4, dim=24)  # N = 48
        store = dict(zip(("int8", "pq"), self._stores(emb)))[kind]
        queries = emb[:5] + 0.02
        qi, qd = candidate_scan(queries, emb, 6, store)   # 6·8 = 48 ≥ N
        ei, ed = exact_search(queries, emb, 6)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_array_equal(qd, ed)

    def test_lsh_pools_never_duplicate_candidates(self):
        """Rows whose probed pool is narrower than ``k · overfetch`` keep
        all their candidates through the code-space narrowing — pad slots
        must not alias as (duplicate) member 0."""
        emb = family_cloud(2, families=48, per_family=8, dim=24,
                           spread=10.0, noise=0.4)
        store = QuantizedStore(
            emb, QuantizationConfig(enabled=True, min_size=4, overfetch=2))
        index = ANNIndex(ANNConfig(seed=0, num_probes=8, min_candidates=4))
        index.rebuild(emb)
        queries = emb[::7] + 0.05
        qi, _ = index.search(queries, emb, 5, store=store)
        for row in qi:
            assert len(set(row.tolist())) == 5
        pq = PQStore(emb, pq_config(num_subspaces=4, codebook_size=16,
                                    min_size=4, overfetch=2))
        e2 = E2LSHIndex(E2LSHConfig(seed=0, num_tables=12, num_probes=32,
                                    min_candidates=4))
        e2.rebuild(emb)
        pi, _ = e2.search(queries, emb, 5, store=pq)
        for row in pi:
            assert len(set(row.tolist())) == 5


class TestLSHPoolNarrowing:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_int8_pools_match_the_float_pools_on_separated_clouds(
            self, seed):
        """With quantization error far below the family separation the
        code-narrowed pools must keep every true neighbor, so the search
        agrees with the float-pool result bit-for-bit."""
        emb = family_cloud(seed, families=64, per_family=8, dim=32,
                           spread=20.0, noise=0.3)
        store = QuantizedStore(
            emb, QuantizationConfig(enabled=True, min_size=16, overfetch=4))
        index = ANNIndex(ANNConfig(seed=0, num_probes=8))
        index.rebuild(emb)
        queries = emb[::13] + 0.05
        with_codes = index.search(queries, emb, 5, store=store)
        plain = index.search(queries, emb, 5)
        np.testing.assert_array_equal(with_codes[0], plain[0])
        np.testing.assert_allclose(with_codes[1], plain[1],
                                   rtol=1e-9, atol=1e-12)

    def test_pq_pools_match_the_float_pools_on_separated_clouds(self):
        emb = family_cloud(7, families=64, per_family=8, dim=48,
                           spread=20.0, noise=0.3)
        store = PQStore(emb, pq_config(seed=7, overfetch=4))
        index = E2LSHIndex(E2LSHConfig(seed=0, num_tables=12, num_probes=32))
        index.rebuild(emb)
        queries = emb[::13] + 0.05
        with_codes = index.search(queries, emb, 5, store=store)
        plain = index.search(queries, emb, 5)
        np.testing.assert_array_equal(with_codes[0], plain[0])
        np.testing.assert_allclose(with_codes[1], plain[1],
                                   rtol=1e-9, atol=1e-12)


class TestAdvisorIntegration:
    @staticmethod
    def _fitted(quantization):
        from repro.core.advisor import AutoCE, AutoCEConfig
        from repro.core.dml import DMLConfig
        from repro.core.graph import FeatureGraph
        from repro.testbed.scores import DatasetLabel

        rng = np.random.default_rng(0)
        graphs, labels = [], []
        for i in range(24):
            tables = int(rng.integers(1, 4))
            graphs.append(FeatureGraph(
                f"g{i}", rng.normal(size=(tables, 12)),
                np.zeros((tables, tables))))
            qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0],
                    2: [3.0, 6.0, 1.1]}[i % 3]
            labels.append(DatasetLabel(("A", "B", "C"), qerr,
                                       [0.001, 0.002, 0.003]))
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=8, embedding_dim=8, knn_k=3, use_incremental=False,
            dml=DMLConfig(epochs=2, batch_size=8), seed=0,
            quantization=quantization))
        advisor.fit(graphs, labels)
        return advisor, graphs

    def test_pq_round_trips_through_persistence(self, tmp_path):
        from repro.core.persistence import load_advisor, save_advisor

        quantization = pq_config(num_subspaces=4, codebook_size=16,
                                 min_size=8, residual=True)
        advisor, graphs = self._fitted(quantization)
        assert isinstance(advisor.rcs.quantized, PQStore)
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        node = load_advisor(path)
        restored = node.config.quantization
        assert restored.mode == "pq"
        assert restored.num_subspaces == 4
        assert restored.codebook_size == 16
        assert restored.residual
        assert isinstance(node.rcs.quantized, PQStore)
        # Same rows + same seeded k-means → bit-identical codes, and the
        # reloaded node serves the original recommendations.
        np.testing.assert_array_equal(node.rcs.quantized.codes,
                                      advisor.rcs.quantized.codes)
        before = [r.model for r in advisor.recommend_batch(graphs[:6], 0.9)]
        after = [r.model for r in node.recommend_batch(graphs[:6], 0.9)]
        assert before == after

    def test_generation_stamp_folds_the_pq_params(self):
        advisor, _ = self._fitted(QuantizationConfig(enabled=True,
                                                     min_size=8))
        int8_generation = advisor.embedding_generation()
        advisor.set_quantization(True, mode="pq")
        assert advisor.embedding_generation() != int8_generation

    def test_set_quantization_rejects_an_unknown_mode(self):
        advisor, _ = self._fitted(QuantizationConfig())
        with pytest.raises(ValueError, match="quantization mode"):
            advisor.set_quantization(True, mode="product")


@pytest.mark.slow
class TestWideCorpusRecall:
    """Benchmark-shaped recall property: a wide family-structured RCS must
    clear the same recall floor the ``pq_search`` bench reports."""

    def test_recall_at_5_on_a_wide_rcs(self):
        rng = np.random.default_rng(0)
        families, per, dim = 256, 16, 512
        centers = rng.normal(size=(families, dim)) * 4.0
        members = (centers[:, None, :]
                   + 0.3 * rng.normal(size=(families, per, dim))
                   ).reshape(-1, dim).astype(np.float32)
        queries = members[::per][:256] + np.float32(0.05)
        store = PQStore(members, QuantizationConfig(
            enabled=True, mode="pq", kmeans_sample=2048))
        qi, _ = store.search(queries, members, 5)
        ei, _ = exact_search(queries, members, 5)
        recall = np.mean([len(set(a) & set(e)) / 5
                          for a, e in zip(qi, ei)])
        assert recall >= 0.95
