"""Precision tiers: float32 advisor end-to-end, serving-tier casts, the
dtype-aware embedding-cache generation (a float32 node must never be served
a stale float64 entry from a shared cache directory), the mixed-tier mode
(low-precision serving over full-precision training weights) and the
``set_dtype`` tier-conflict guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.persistence import load_advisor, save_advisor
from repro.core.predictor import QuantizationConfig
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def small_corpus(n=24, dim=12, seed=0):
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        kind = i % 3
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, dim)) * 0.3
        vertices[:, 0] += {0: 2.0, 1: -2.0, 2: 0.0}[kind]
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.5
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0],
                2: [3.0, 6.0, 1.1]}[kind]
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    return graphs, labels


def fast_config(**kwargs):
    defaults = dict(hidden_dim=16, embedding_dim=8, use_incremental=False,
                    dml=DMLConfig(epochs=3, batch_size=8), seed=0)
    defaults.update(kwargs)
    return AutoCEConfig(**defaults)


@pytest.fixture(scope="module")
def corpus():
    return small_corpus()


class TestFloat32Training:
    def test_float32_fit_serves_float32(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        assert advisor.encoder.dtype == np.float32
        assert advisor.rcs.embeddings.dtype == np.float32
        assert advisor.embed(graphs[0]).dtype == np.float32
        assert advisor.recommend(graphs[0], 0.9).model in MODELS

    def test_recommendations_agree_across_tiers(self, corpus):
        graphs, labels = corpus
        models = {}
        for dtype in ("float64", "float32"):
            advisor = AutoCE(fast_config(dtype=dtype))
            advisor.fit(graphs, labels)
            models[dtype] = [r.model
                             for r in advisor.recommend_batch(graphs, 0.9)]
        agreement = np.mean([a == b for a, b in zip(models["float64"],
                                                    models["float32"])])
        assert agreement >= 0.99

    def test_set_dtype_downcasts_fitted_advisor(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        reference = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        advisor.set_dtype("float32")
        assert advisor.encoder.dtype == np.float32
        assert advisor.rcs.embeddings.dtype == np.float32
        downcast = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        agreement = np.mean([a == b for a, b in zip(reference, downcast)])
        assert agreement >= 0.99

    def test_set_dtype_rejects_unknown_tier(self, corpus):
        advisor = AutoCE(fast_config())
        with pytest.raises(ValueError):
            advisor.set_dtype("float16")


class TestSetDtypeTierConflict:
    """Regression: ``set_dtype`` must *raise* on an upcast whose mantissa
    bits are gone — not silently zero-pad float32 weights into a float64
    advisor that looks (and stamps cache generations) like the real one."""

    def test_upcasting_a_float32_trained_advisor_raises(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        with pytest.raises(ValueError, match="unrecoverable"):
            advisor.set_dtype("float64")
        # The failed cast must leave the advisor untouched and serving.
        assert advisor.encoder.dtype == np.float32
        assert advisor.config.dtype == "float32"
        assert advisor.recommend(graphs[0], 0.9).model in MODELS

    def test_upcasting_a_reloaded_float32_advisor_raises(self, corpus,
                                                         tmp_path):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        save_advisor(advisor, str(tmp_path / "advisor32.npz"))
        node = load_advisor(str(tmp_path / "advisor32.npz"))
        # The persistence metadata says float32; a float64 request conflicts.
        with pytest.raises(ValueError, match="float32"):
            node.set_dtype("float64")

    def test_error_points_at_the_mixed_tier_mode(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        with pytest.raises(ValueError, match="serving_dtype"):
            advisor.set_dtype("float64")

    def test_downcast_then_upcast_round_trip_is_refused(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        advisor.set_dtype("float32")
        with pytest.raises(ValueError):
            advisor.set_dtype("float64")

    def test_unfitted_advisor_may_still_choose_any_tier(self):
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.set_dtype("float64")
        assert advisor.config.dtype == "float64"


class TestMixedTierServing:
    """``serving_dtype``: float32 serving embeddings over float64 weights,
    optionally with the int8 candidate tier — no destructive downcast."""

    def test_serving_tier_is_independent_of_the_training_tier(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(serving_dtype="float32"))
        advisor.fit(graphs, labels)
        assert advisor.encoder.dtype == np.float64       # weights untouched
        assert advisor.rcs.embeddings.dtype == np.float32
        assert advisor.embed(graphs[0]).dtype == np.float32

    def test_mixed_tier_recommendations_agree_with_float64(self, corpus):
        graphs, labels = corpus
        reference = AutoCE(fast_config())
        reference.fit(graphs, labels)
        expected = [r.model for r in reference.recommend_batch(graphs, 0.9)]
        mixed = AutoCE(fast_config(
            serving_dtype="float32",
            quantization=QuantizationConfig(enabled=True, min_size=8,
                                            overfetch=4)))
        mixed.fit(graphs, labels)
        assert mixed.rcs.quantized is not None
        served = [r.model for r in mixed.recommend_batch(graphs, 0.9)]
        agreement = np.mean([a == b for a, b in zip(expected, served)])
        assert agreement >= 0.99

    def test_reasserting_the_active_serving_tier_is_a_no_op(self, corpus,
                                                            tmp_path):
        """`repro serve --serving-dtype float32` on an advisor *saved* at
        that serving tier must not re-embed the corpus: the reloaded RCS
        rows are the warm start persistence exists to provide."""
        graphs, labels = corpus
        advisor = AutoCE(fast_config(serving_dtype="float32"))
        advisor.fit(graphs, labels)
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        node = load_advisor(str(tmp_path / "advisor.npz"))
        rcs_before = node.rcs
        forwards = {"n": 0}
        original_embed = node.encoder.embed
        node.encoder.embed = lambda batch: (
            forwards.__setitem__("n", forwards["n"] + 1)
            or original_embed(batch))
        node.set_serving_dtype("float32")
        assert forwards["n"] == 0
        assert node.rcs is rcs_before
        # ...and declaring the training tier explicitly is equally free.
        plain = AutoCE(fast_config())
        plain.fit(graphs, labels)
        rcs_before = plain.rcs
        plain.set_serving_dtype("float64")
        assert plain.rcs is rcs_before

    def test_set_serving_dtype_is_reversible(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        expected = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        advisor.set_serving_dtype("float32")
        assert advisor.rcs.embeddings.dtype == np.float32
        advisor.set_serving_dtype(None)
        # Leaving the mixed-tier mode re-derives the RCS from the untouched
        # float64 weights: bit-identical serving, unlike a set_dtype round
        # trip (which is refused precisely because it cannot restore this).
        assert advisor.rcs.embeddings.dtype == np.float64
        restored = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        assert restored == expected

    def test_generation_folds_the_serving_tier_and_quantization(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        plain = advisor.embedding_generation()
        advisor.set_serving_dtype("float32")
        mixed = advisor.embedding_generation()
        advisor.set_quantization(True)
        quantized = advisor.embedding_generation()
        assert len({plain, mixed, quantized}) == 3

    def test_mixed_tier_node_never_serves_stale_float64_cache_entries(
            self, corpus, tmp_path):
        graphs, labels = corpus
        cache_dir = str(tmp_path / "emb-cache")
        advisor = AutoCE(fast_config(embedding_cache_dir=cache_dir))
        advisor.fit(graphs, labels)
        advisor.recommend_batch(graphs, 0.9)     # float64-tier disk entries
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        del advisor

        node = load_advisor(str(tmp_path / "advisor.npz"))
        node.config.embedding_cache_dir = cache_dir
        node.set_serving_dtype("float32")
        embeddings = np.stack([node.embed(g) for g in graphs])
        assert embeddings.dtype == np.float32
        assert node.embedding_cache.disk_hits == 0

    def test_adapt_online_stays_on_the_serving_tier(self, corpus):
        """Online adapting re-embeds at the training tier; a mixed-tier
        node must come back to the serving tier with its int8 codes
        requantized for the post-adaptation geometry."""
        graphs, labels = corpus
        advisor = AutoCE(fast_config(
            serving_dtype="float32",
            quantization=QuantizationConfig(enabled=True, min_size=8,
                                            overfetch=4)))
        advisor.fit(graphs, labels)
        fresh = FeatureGraph("drifted",
                             np.full((2, 12), 9.0), np.zeros((2, 2)))
        advisor.adapt_online(fresh, labels[0], update_epochs=1)
        assert advisor.encoder.dtype == np.float64
        assert advisor.rcs.embeddings.dtype == np.float32
        assert advisor.rcs.quantized is not None
        assert len(advisor.rcs.quantized) == len(advisor.rcs)
        assert advisor.recommend(graphs[0], 0.9).model in MODELS

    def test_quantized_store_round_trips_through_persistence(self, corpus,
                                                             tmp_path):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(
            serving_dtype="float32",
            quantization=QuantizationConfig(enabled=True, min_size=8,
                                            overfetch=4)))
        advisor.fit(graphs, labels)
        before = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        node = load_advisor(str(tmp_path / "advisor.npz"))
        assert node.config.serving_dtype == "float32"
        assert node.config.quantization.enabled
        assert node.rcs.embeddings.dtype == np.float32
        assert node.rcs.quantized is not None
        np.testing.assert_array_equal(node.rcs.quantized.codes.shape,
                                      (len(graphs),
                                       node.encoder.embedding_dim))
        after = [r.model for r in node.recommend_batch(graphs, 0.9)]
        assert before == after


class TestGenerationFoldsDtype:
    def test_generation_differs_across_tiers(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        g64 = advisor.embedding_generation()
        advisor.set_dtype("float32")
        g32 = advisor.embedding_generation()
        assert g64 != g32

    def test_set_dtype_clears_in_memory_cache(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        advisor.recommend(graphs[0], 0.9)
        assert len(advisor.embedding_cache) > 0
        advisor.set_dtype("float32")
        assert len(advisor.embedding_cache) == 0


class TestPersistentCacheDtypeRegression:
    """A dtype switch must invalidate persistent entries exactly like an
    encoder-weight change (the FeatureGraph fingerprint — the cache key —
    is dtype-independent, so only the generation stamp separates tiers)."""

    def test_float32_node_never_served_stale_float64_entries(
            self, corpus, tmp_path):
        graphs, labels = corpus
        cache_dir = str(tmp_path / "emb-cache")
        advisor = AutoCE(fast_config(embedding_cache_dir=cache_dir))
        advisor.fit(graphs, labels)
        advisor.recommend_batch(graphs, 0.9)   # populate the disk tier
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        del advisor

        # A restarted node on the same cache directory, now serving the
        # float32 tier: every embedding must be recomputed at float32, not
        # promoted from the float64 generation on disk.
        node = load_advisor(str(tmp_path / "advisor.npz"))
        node.config.embedding_cache_dir = cache_dir
        node.set_dtype("float32")
        embeddings = np.stack([node.embed(g) for g in graphs])
        assert embeddings.dtype == np.float32
        cache = node.embedding_cache
        assert cache.disk_hits == 0
        fresh = node.encoder.embed(graphs)
        np.testing.assert_array_equal(embeddings, fresh)

    def test_same_tier_restart_still_warm_starts(self, corpus, tmp_path):
        """The dtype fold must not break the PR 2 warm-start contract."""
        graphs, labels = corpus
        cache_dir = str(tmp_path / "emb-cache")
        advisor = AutoCE(fast_config(embedding_cache_dir=cache_dir))
        advisor.fit(graphs, labels)
        advisor.recommend_batch(graphs, 0.9)
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        del advisor

        node = load_advisor(str(tmp_path / "advisor.npz"))
        node.config.embedding_cache_dir = cache_dir
        node.recommend_batch(graphs, 0.9)
        assert node.embedding_cache.disk_hits == len(graphs)


class TestPersistenceRoundTrip:
    def test_float32_advisor_round_trips(self, corpus, tmp_path):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        before = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        save_advisor(advisor, str(tmp_path / "advisor32.npz"))
        reloaded = load_advisor(str(tmp_path / "advisor32.npz"))
        assert reloaded.config.dtype == "float32"
        assert reloaded.encoder.dtype == np.float32
        assert reloaded.rcs.embeddings.dtype == np.float32
        after = [r.model for r in reloaded.recommend_batch(graphs, 0.9)]
        assert before == after
