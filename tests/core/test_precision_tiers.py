"""Precision tiers: float32 advisor end-to-end, serving-tier casts, and the
dtype-aware embedding-cache generation (a float32 node must never be served
a stale float64 entry from a shared cache directory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.persistence import load_advisor, save_advisor
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def small_corpus(n=24, dim=12, seed=0):
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        kind = i % 3
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, dim)) * 0.3
        vertices[:, 0] += {0: 2.0, 1: -2.0, 2: 0.0}[kind]
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.5
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0],
                2: [3.0, 6.0, 1.1]}[kind]
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    return graphs, labels


def fast_config(**kwargs):
    defaults = dict(hidden_dim=16, embedding_dim=8, use_incremental=False,
                    dml=DMLConfig(epochs=3, batch_size=8), seed=0)
    defaults.update(kwargs)
    return AutoCEConfig(**defaults)


@pytest.fixture(scope="module")
def corpus():
    return small_corpus()


class TestFloat32Training:
    def test_float32_fit_serves_float32(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        assert advisor.encoder.dtype == np.float32
        assert advisor.rcs.embeddings.dtype == np.float32
        assert advisor.embed(graphs[0]).dtype == np.float32
        assert advisor.recommend(graphs[0], 0.9).model in MODELS

    def test_recommendations_agree_across_tiers(self, corpus):
        graphs, labels = corpus
        models = {}
        for dtype in ("float64", "float32"):
            advisor = AutoCE(fast_config(dtype=dtype))
            advisor.fit(graphs, labels)
            models[dtype] = [r.model
                             for r in advisor.recommend_batch(graphs, 0.9)]
        agreement = np.mean([a == b for a, b in zip(models["float64"],
                                                    models["float32"])])
        assert agreement >= 0.99

    def test_set_dtype_downcasts_fitted_advisor(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        reference = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        advisor.set_dtype("float32")
        assert advisor.encoder.dtype == np.float32
        assert advisor.rcs.embeddings.dtype == np.float32
        downcast = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        agreement = np.mean([a == b for a, b in zip(reference, downcast)])
        assert agreement >= 0.99

    def test_set_dtype_rejects_unknown_tier(self, corpus):
        advisor = AutoCE(fast_config())
        with pytest.raises(ValueError):
            advisor.set_dtype("float16")


class TestGenerationFoldsDtype:
    def test_generation_differs_across_tiers(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        g64 = advisor.embedding_generation()
        advisor.set_dtype("float32")
        g32 = advisor.embedding_generation()
        assert g64 != g32

    def test_set_dtype_clears_in_memory_cache(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(fast_config())
        advisor.fit(graphs, labels)
        advisor.recommend(graphs[0], 0.9)
        assert len(advisor.embedding_cache) > 0
        advisor.set_dtype("float32")
        assert len(advisor.embedding_cache) == 0


class TestPersistentCacheDtypeRegression:
    """A dtype switch must invalidate persistent entries exactly like an
    encoder-weight change (the FeatureGraph fingerprint — the cache key —
    is dtype-independent, so only the generation stamp separates tiers)."""

    def test_float32_node_never_served_stale_float64_entries(
            self, corpus, tmp_path):
        graphs, labels = corpus
        cache_dir = str(tmp_path / "emb-cache")
        advisor = AutoCE(fast_config(embedding_cache_dir=cache_dir))
        advisor.fit(graphs, labels)
        advisor.recommend_batch(graphs, 0.9)   # populate the disk tier
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        del advisor

        # A restarted node on the same cache directory, now serving the
        # float32 tier: every embedding must be recomputed at float32, not
        # promoted from the float64 generation on disk.
        node = load_advisor(str(tmp_path / "advisor.npz"))
        node.config.embedding_cache_dir = cache_dir
        node.set_dtype("float32")
        embeddings = np.stack([node.embed(g) for g in graphs])
        assert embeddings.dtype == np.float32
        cache = node.embedding_cache
        assert cache.disk_hits == 0
        fresh = node.encoder.embed(graphs)
        np.testing.assert_array_equal(embeddings, fresh)

    def test_same_tier_restart_still_warm_starts(self, corpus, tmp_path):
        """The dtype fold must not break the PR 2 warm-start contract."""
        graphs, labels = corpus
        cache_dir = str(tmp_path / "emb-cache")
        advisor = AutoCE(fast_config(embedding_cache_dir=cache_dir))
        advisor.fit(graphs, labels)
        advisor.recommend_batch(graphs, 0.9)
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        del advisor

        node = load_advisor(str(tmp_path / "advisor.npz"))
        node.config.embedding_cache_dir = cache_dir
        node.recommend_batch(graphs, 0.9)
        assert node.embedding_cache.disk_hits == len(graphs)


class TestPersistenceRoundTrip:
    def test_float32_advisor_round_trips(self, corpus, tmp_path):
        graphs, labels = corpus
        advisor = AutoCE(fast_config(dtype="float32"))
        advisor.fit(graphs, labels)
        before = [r.model for r in advisor.recommend_batch(graphs, 0.9)]
        save_advisor(advisor, str(tmp_path / "advisor32.npz"))
        reloaded = load_advisor(str(tmp_path / "advisor32.npz"))
        assert reloaded.config.dtype == "float32"
        assert reloaded.encoder.dtype == np.float32
        assert reloaded.rcs.embeddings.dtype == np.float32
        after = [r.model for r in reloaded.recommend_batch(graphs, 0.9)]
        assert before == after
