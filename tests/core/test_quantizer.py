"""Property tests for the int8 candidate tier (:class:`QuantizedStore`).

Each class pins one property of the quantizer over seeded randomized
embedding clouds (anisotropic scales, shifted centers, degenerate shapes):
the round-trip error bound, calibration monotonicity, degenerate-corpus
behavior, the exact agreement of the production distance kernel with
literal int32 accumulation, and the quantization error bound of code-space
distances against the float reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import (QuantizationConfig, QuantizedStore,
                                  exact_search,
                                  quantized_distances_int32_reference)

SEEDS = range(8)


def random_cloud(seed: int, n: int = 200, dim: int = 16) -> np.ndarray:
    """An anisotropic, off-center embedding cloud (GIN-embedding-shaped)."""
    rng = np.random.default_rng(seed)
    scales = 10.0 ** rng.uniform(-2, 2, size=dim)
    center = rng.normal(size=dim) * scales * 3.0
    return rng.normal(size=(n, dim)) * scales + center


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_reconstruction_error_bounded_by_half_scale(self, seed):
        emb = random_cloud(seed)
        store = QuantizedStore(emb)
        reconstructed = store.dequantize(store.codes)
        # Calibration covers the corpus range, so no member clips and the
        # rounding error is at most half a quantization step per dimension.
        error = np.abs(reconstructed - emb)
        assert error.max() <= store.scale * 0.5 * (1 + 1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_out_of_range_inputs_clip_to_the_boundary(self, seed):
        emb = random_cloud(seed)
        store = QuantizedStore(emb)
        outlier = emb[0] + 1e6 * (emb.max(axis=0) - emb.min(axis=0) + 1.0)
        codes = store.quantize(outlier)
        assert codes.min() >= -127 and codes.max() <= 127
        assert (codes == 127).any()


class TestCalibration:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scale_grows_monotonically_with_the_corpus_spread(self, seed):
        emb = random_cloud(seed)
        scales = [QuantizedStore(alpha * emb).scale
                  for alpha in (0.5, 1.0, 2.0, 8.0)]
        assert all(a < b for a, b in zip(scales, scales[1:]))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scale_is_homogeneous_in_the_corpus(self, seed):
        emb = random_cloud(seed)
        base = QuantizedStore(emb).scale
        scaled = QuantizedStore(3.0 * emb).scale
        np.testing.assert_allclose(scaled, 3.0 * base, rtol=1e-12)

    def test_translation_leaves_codes_invariant(self):
        # Zero-points are per-dimension midranges, so a global translation
        # moves the calibration with the corpus and the codes are untouched.
        emb = random_cloud(3)
        shift = np.full(emb.shape[1], 0.5)
        a = QuantizedStore(emb)
        b = QuantizedStore(emb + shift)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_allclose(a.scale, b.scale, rtol=1e-9)


class TestDegenerateCorpora:
    def test_constant_corpus_quantizes_to_zero_codes(self):
        emb = np.full((32, 8), 7.25)
        store = QuantizedStore(emb)
        assert (store.codes == 0).all()
        idx, dist = store.search(emb[:4], emb, 3)
        np.testing.assert_array_equal(idx, [[0, 1, 2]] * 4)
        np.testing.assert_array_equal(dist, 0.0)

    def test_zero_corpus(self):
        emb = np.zeros((16, 4))
        store = QuantizedStore(emb)
        assert (store.codes == 0).all()
        assert store.scale > 0

    def test_single_member_rcs(self):
        emb = np.array([[1.0, -2.0, 3.0]])
        store = QuantizedStore(emb)
        idx, dist = store.search(emb, emb, 5)
        np.testing.assert_array_equal(idx, [[0]])
        np.testing.assert_allclose(dist, 0.0, atol=1e-9)

    def test_empty_store_grows_via_add(self):
        store = QuantizedStore(np.zeros((0, 4)),
                               QuantizationConfig(enabled=True))
        assert len(store) == 0
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(12, 4))
        for row in emb:
            store.add(row)
        assert len(store) == 12


class TestInt32Kernel:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_production_kernel_is_exact_int32_accumulation(self, seed):
        """The float32 GEMM over int8 codes must produce the *same integers*
        as literal int32 accumulation — every intermediate fits the 24-bit
        mantissa for any embedding width the encoder produces."""
        emb = random_cloud(seed, n=150)
        store = QuantizedStore(emb)
        queries = random_cloud(seed + 100, n=40, dim=emb.shape[1])
        produced = store.code_distances(queries)
        reference = quantized_distances_int32_reference(
            store.quantize(queries), store.codes)
        assert produced.dtype == np.float32
        np.testing.assert_array_equal(produced,
                                      reference.astype(produced.dtype))

    @pytest.mark.parametrize("dim", [261, 1100])
    def test_wide_embeddings_fall_back_to_a_float64_gemm(self, dim):
        """Past d = 260 the assembled code distance (up to 4·d·127²) no
        longer fits float32's 24-bit mantissa — e.g. opposite-corner codes
        at d = 301 reach odd values above 2²⁴ — so the kernel must switch
        to the float64 GEMM to stay exact."""
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(50, dim))
        store = QuantizedStore(emb)
        produced = store.code_distances(emb[:5])
        reference = quantized_distances_int32_reference(
            store.quantize(emb[:5]), store.codes)
        assert produced.dtype == np.float64
        np.testing.assert_array_equal(produced,
                                      reference.astype(np.float64))

    def test_float32_gemm_exact_at_the_widest_qualifying_dim(self):
        """d = 260 with maximally spread codes is the worst float32 case:
        the distance bound 4·260·127² just fits the mantissa."""
        emb = np.vstack([np.full((2, 260), -1.0), np.full((2, 260), 1.0)])
        store = QuantizedStore(emb)
        produced = store.code_distances(emb)
        reference = quantized_distances_int32_reference(
            store.quantize(emb), store.codes)
        assert produced.dtype == np.float32
        np.testing.assert_array_equal(produced,
                                      reference.astype(np.float32))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_code_distances_match_float_reference_within_quant_bound(
            self, seed):
        """``scale · sqrt(code distance)`` is the dequantized Euclidean
        distance; by the triangle inequality it can differ from the float
        reference by at most the two reconstruction errors, each bounded by
        ``scale/2 · sqrt(d)``."""
        emb = random_cloud(seed)
        store = QuantizedStore(emb)
        queries = emb[:30]
        code_dist = store.scale * np.sqrt(store.code_distances(queries))
        true_dist = np.sqrt(
            np.maximum(((queries[:, None, :] - emb[None, :, :]) ** 2)
                       .sum(axis=2), 0.0))
        bound = store.scale * np.sqrt(emb.shape[1]) * (1 + 1e-9)
        assert np.abs(code_dist - true_dist).max() <= bound


class TestFamilyPinValidation:
    def test_unknown_family_fails_at_configuration_time(self):
        from repro.core.predictor import ANNConfig

        with pytest.raises(ValueError, match="index family"):
            ANNConfig(family="E2LSH")   # wrong case must not crash mid-add

    def test_known_families_are_accepted(self):
        from repro.core.predictor import ANNConfig

        for family in ("auto", "sign", "e2lsh", "exact"):
            assert ANNConfig(family=family).family == family


class TestDriftRecalibration:
    def test_in_range_adds_do_not_trigger_recalibration(self):
        emb = random_cloud(0)
        store = QuantizedStore(emb, QuantizationConfig(enabled=True))
        for row in emb[:50]:
            assert not store.add(row)

    def test_gross_outlier_triggers_immediately(self):
        emb = random_cloud(0)
        store = QuantizedStore(emb, QuantizationConfig(enabled=True))
        span = emb.max(axis=0) - emb.min(axis=0)
        assert store.add(emb[0] + 10.0 * span)

    def test_accumulated_clipping_triggers(self):
        """The clip *fraction* accumulates across adds: 50 in-range rows
        dilute the denominator, so mildly clipping rows must stay quiet
        until the 6th of them tips 6/56 past the 10 % threshold."""
        emb = random_cloud(0)
        config = QuantizationConfig(enabled=True, drift_clip_fraction=0.1,
                                    drift_outlier_factor=1e9)
        store = QuantizedStore(emb, config)
        for row in emb[:50]:
            assert not store.add(row)
        lo, hi = emb.min(axis=0), emb.max(axis=0)
        just_outside = hi + 0.02 * (hi - lo)
        verdicts = [store.add(just_outside) for _ in range(6)]
        assert verdicts[:5] == [False] * 5
        assert verdicts[5]

    def test_recalibrate_restores_the_round_trip_bound(self):
        emb = random_cloud(0)
        store = QuantizedStore(emb, QuantizationConfig(enabled=True))
        grown = np.vstack([emb, emb * 4.0])
        store.recalibrate(grown)
        error = np.abs(store.dequantize(store.codes) - grown)
        assert error.max() <= store.scale * 0.5 * (1 + 1e-9)


class TestCandidateSearch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_search_matches_exact_on_separated_clouds(self, seed):
        """With quantization error far below the neighbor separation the
        candidate pass must reproduce the exact top-k bit-for-bit
        (indices and float-tier distances)."""
        rng = np.random.default_rng(seed)
        centers = rng.normal(size=(40, 8)) * 50.0
        emb = (centers[:, None, :]
               + rng.normal(size=(40, 5, 8))).reshape(200, 8)
        store = QuantizedStore(
            emb, QuantizationConfig(enabled=True, min_size=16, overfetch=8))
        queries = emb[::7] + 0.1
        qi, qd = store.search(queries, emb, 5)
        ei, ed = exact_search(queries, emb, 5)
        np.testing.assert_array_equal(qi, ei)
        # Same Gram identity evaluated over different partial sums: only
        # cancellation noise separates the two distance paths.
        np.testing.assert_allclose(qd, ed, rtol=1e-6, atol=1e-9)

    def test_small_corpora_serve_the_plain_float_scan(self):
        emb = random_cloud(0, n=30)
        store = QuantizedStore(
            emb, QuantizationConfig(enabled=True, min_size=64))
        qi, qd = store.search(emb[:3], emb, 4)
        ei, ed = exact_search(emb[:3], emb, 4)
        np.testing.assert_array_equal(qi, ei)
        np.testing.assert_array_equal(qd, ed)
