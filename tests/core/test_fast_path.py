"""Numerical-equivalence tests for the vectorized end-to-end fast path.

The vectorized featurizer, the corpus tensor cache used by DML training,
and the batched serving path must reproduce the scalar reference paths —
exactly on the exact featurizer path, and to tight tolerance wherever the
Gram-matrix distance identity replaces direct differencing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig, DMLTrainer
from repro.core.encoder import GINEncoder
from repro.core.features import (column_features, column_features_matrix,
                                 correlation_row, equality_correlation_matrix,
                                 table_feature_vector,
                                 table_feature_vector_reference)
from repro.core.graph import (FeatureGraph, GraphTensorBatcher, batch_graphs,
                              build_feature_graph,
                              build_feature_graph_reference)
from repro.core.predictor import (KNNPredictor, RecommendationCandidateSet,
                                  squared_distance_matrix, top_k_neighbors)
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def synthetic_corpus(n=24, dim=12, seed=0):
    """Learnable corpus (structure determines the winning model)."""
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        kind = i % 3
        shift = {0: 2.0, 1: -2.0, 2: 0.0}[kind]
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, dim)) * 0.3
        vertices[:, 0] += shift
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.5
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0], 2: [3.0, 6.0, 1.1]}[kind]
        qerr = list(np.array(qerr) + rng.uniform(0, 0.2, 3))
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    return graphs, labels


@pytest.fixture(scope="module")
def corpus():
    return synthetic_corpus()


@pytest.fixture(scope="module")
def datasets():
    return [generate_dataset(random_spec(seed)) for seed in (11, 22, 33)]


class TestVectorizedFeaturizer:
    def test_column_features_matrix_matches_scalar(self, rng):
        matrix = rng.integers(0, 50, size=(5, 400))
        expected = np.stack([column_features(row) for row in matrix])
        # Identical up to 1 ULP (python-float vs numpy-array pow in std**4).
        np.testing.assert_allclose(column_features_matrix(matrix), expected,
                                   rtol=1e-14, atol=1e-15)

    def test_constant_and_single_value_columns(self):
        matrix = np.vstack([np.full(30, 7), np.arange(30)])
        expected = np.stack([column_features(row) for row in matrix])
        np.testing.assert_array_equal(column_features_matrix(matrix), expected)

    def test_empty_matrix(self):
        assert column_features_matrix(np.zeros((3, 0))).shape == (3, 6)
        np.testing.assert_array_equal(column_features_matrix(np.zeros((3, 0))), 0.0)

    def test_equality_correlation_matches_scalar(self, rng, small_dataset):
        table = small_dataset[small_dataset.table_names[0]]
        columns = table.data_columns()
        matrix = np.stack([table[c] for c in columns])
        full = equality_correlation_matrix(matrix)
        for i, column in enumerate(columns):
            expected = correlation_row(table, column, columns, len(columns))
            np.testing.assert_array_equal(full[i], expected)

    def test_table_vector_matches_reference(self, small_dataset, single_dataset):
        for dataset in (small_dataset, single_dataset):
            for name in dataset.table_names:
                table = dataset[name]
                np.testing.assert_allclose(
                    table_feature_vector(table, 5),
                    table_feature_vector_reference(table, 5),
                    rtol=1e-14, atol=1e-15)

    def test_graph_matches_reference_on_corpus(self, datasets):
        for dataset in datasets:
            fast = build_feature_graph(dataset)
            reference = build_feature_graph_reference(dataset)
            np.testing.assert_allclose(fast.vertices, reference.vertices,
                                       rtol=1e-14, atol=1e-15)
            np.testing.assert_array_equal(fast.edges, reference.edges)

    def test_sampling_sketch(self, small_dataset):
        exact = build_feature_graph(small_dataset)
        sketched = build_feature_graph(small_dataset, sample_rows=50)
        assert sketched.vertices.shape == exact.vertices.shape
        assert np.all(np.isfinite(sketched.vertices))
        # Deterministic: same sketch twice is identical.
        again = build_feature_graph(small_dataset, sample_rows=50)
        np.testing.assert_array_equal(sketched.vertices, again.vertices)
        # A sketch at least as large as every table is the exact path.
        rows = max(small_dataset[n].num_rows for n in small_dataset.table_names)
        np.testing.assert_array_equal(
            build_feature_graph(small_dataset, sample_rows=rows).vertices,
            exact.vertices)


class TestTensorBatcher:
    def test_slices_match_batch_graphs(self, corpus):
        graphs, _ = corpus
        batcher = GraphTensorBatcher(graphs)
        idx = np.array([3, 0, 7])
        vertices, adjacency, mask = batcher.slice(idx)
        ref_v, ref_e, ref_m = batch_graphs([graphs[i] for i in idx])
        n = ref_v.shape[1]
        np.testing.assert_array_equal(vertices[:, :n], ref_v)
        np.testing.assert_array_equal(mask[:, :n], ref_m)
        np.testing.assert_array_equal(
            adjacency[:, :n, :n], ref_e + np.swapaxes(ref_e, 1, 2))
        # Padding beyond each batch's own max is all-zero.
        np.testing.assert_array_equal(vertices[:, n:], 0.0)
        np.testing.assert_array_equal(mask[:, n:], 0.0)

    def test_training_equivalent_to_per_batch_path(self, corpus):
        graphs, labels = corpus
        histories, embeddings = [], []
        for use_cache in (True, False):
            encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=16,
                                 embedding_dim=8, seed=0)
            trainer = DMLTrainer(encoder, DMLConfig(
                epochs=4, batch_size=8, seed=0, use_tensor_cache=use_cache))
            histories.append(trainer.train(graphs, labels))
            embeddings.append(encoder.embed(graphs))
        np.testing.assert_allclose(histories[0], histories[1], rtol=1e-9)
        np.testing.assert_allclose(embeddings[0], embeddings[1],
                                   rtol=1e-9, atol=1e-12)


class TestGramDistances:
    def test_matches_broadcast_distances(self, rng):
        a = rng.normal(size=(7, 5))
        b = rng.normal(size=(9, 5))
        direct = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(squared_distance_matrix(a, b), direct,
                                   rtol=1e-9, atol=1e-9)

    def test_nearest_neighbor_distances_match_naive(self, rng):
        emb = rng.normal(size=(20, 6))
        labels = [DatasetLabel(MODELS, [1.0, 2.0, 3.0],
                               [0.001, 0.002, 0.003])] * 20
        rcs = RecommendationCandidateSet(emb, list(labels))
        diff = emb[:, None, :] - emb[None, :, :]
        naive = np.sqrt((diff ** 2).sum(axis=2))
        np.fill_diagonal(naive, np.inf)
        np.testing.assert_allclose(rcs.nearest_neighbor_distances(),
                                   naive.min(axis=1), rtol=1e-9, atol=1e-9)

    def test_top_k_matches_stable_argsort(self, rng):
        distances = rng.normal(size=(10, 40)) ** 2
        for k in (1, 2, 5, 40):
            expected = np.argsort(distances, axis=1, kind="stable")[:, :k]
            np.testing.assert_array_equal(top_k_neighbors(distances, k),
                                          expected)

    def test_top_k_breaks_ties_by_index(self):
        distances = np.array([[1.0, 0.5, 0.5, 2.0]])
        np.testing.assert_array_equal(top_k_neighbors(distances, 2),
                                      [[1, 2]])

    def test_top_k_ties_straddling_boundary(self, rng):
        # Duplicate distances crossing the k-th position (e.g. duplicate
        # embeddings in the RCS) must resolve to the lowest indices, exactly
        # as the stable argsort the fast path replaced.
        values = rng.integers(0, 5, size=(200, 30)).astype(np.float64)
        for k in (1, 3, 7):
            expected = np.argsort(values, axis=1, kind="stable")[:, :k]
            np.testing.assert_array_equal(top_k_neighbors(values, k),
                                          expected)


class TestCandidateSetBuffer:
    def _label(self):
        return DatasetLabel(MODELS, [1.0, 2.0, 3.0], [0.001, 0.002, 0.003])

    def test_amortized_add_matches_vstack(self, rng):
        rows = rng.normal(size=(50, 8))
        rcs = RecommendationCandidateSet()
        for row in rows:
            rcs.add(row, self._label())
        assert len(rcs) == 50
        np.testing.assert_array_equal(rcs.embeddings, rows)

    def test_capacity_grows_geometrically(self, rng):
        rcs = RecommendationCandidateSet()
        capacities = set()
        for row in rng.normal(size=(33, 4)):
            rcs.add(row, self._label())
            capacities.add(len(rcs._buffer))
        assert capacities == {4, 8, 16, 32, 64}

    def test_dimension_mismatch_rejected(self):
        rcs = RecommendationCandidateSet()
        rcs.add(np.zeros(4), self._label())
        with pytest.raises(ValueError):
            rcs.add(np.zeros(5), self._label())

    def test_score_matrix_invalidated_on_add(self):
        rcs = RecommendationCandidateSet()
        rcs.add(np.zeros(4), self._label())
        first = rcs.score_matrix(0.9)
        assert first.shape == (1, 3)
        rcs.add(np.ones(4), self._label())
        assert rcs.score_matrix(0.9).shape == (2, 3)


class TestBatchedServing:
    @pytest.fixture(scope="class")
    def advisor(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=24, embedding_dim=8,
            dml=DMLConfig(epochs=15, batch_size=12), seed=0))
        return advisor.fit(graphs, labels)

    def test_predictor_batch_matches_sequential(self, corpus, advisor):
        graphs, _ = corpus
        embeddings = advisor.encoder.embed(graphs)
        batch = advisor.predictor.recommend_batch(
            embeddings, advisor.rcs, accuracy_weight=0.9)
        for embedding, rec in zip(embeddings, batch):
            single = advisor.predictor.recommend(
                embedding, advisor.rcs, accuracy_weight=0.9)
            assert rec.model == single.model
            np.testing.assert_array_equal(rec.neighbor_indices,
                                          single.neighbor_indices)
            np.testing.assert_allclose(rec.score_vector, single.score_vector,
                                       rtol=1e-9)
            # sqrt of the Gram identity turns ~1e-15 noise into ~1e-7.
            np.testing.assert_allclose(rec.neighbor_distances,
                                       single.neighbor_distances,
                                       rtol=1e-6, atol=1e-6)

    def test_advisor_batch_matches_sequential(self, corpus, advisor):
        graphs, _ = corpus
        batch = advisor.recommend_batch(graphs, accuracy_weight=0.8)
        sequential = [advisor.recommend(g, accuracy_weight=0.8)
                      for g in graphs]
        assert [r.model for r in batch] == [r.model for r in sequential]
        for b, s in zip(batch, sequential):
            np.testing.assert_allclose(b.score_vector, s.score_vector,
                                       rtol=1e-9)

    def test_empty_batch(self, advisor):
        assert advisor.recommend_batch([]) == []

    def test_embedding_cache_hits_on_repeat_traffic(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=16, embedding_dim=8, use_incremental=False,
            dml=DMLConfig(epochs=2, batch_size=12), seed=1))
        advisor.fit(graphs, labels)
        cache = advisor.embedding_cache
        assert cache is not None and len(cache) == 0
        advisor.recommend(graphs[0], 1.0)
        misses = cache.misses
        advisor.recommend(graphs[0], 1.0)
        assert cache.hits >= 1 and cache.misses == misses
        # Cached and fresh embeddings agree.
        np.testing.assert_allclose(
            advisor.embed(graphs[0]),
            advisor.encoder.embed_one(graphs[0]), rtol=1e-12)

    def test_cache_invalidated_by_online_adapting(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=16, embedding_dim=8, use_incremental=False,
            dml=DMLConfig(epochs=2, batch_size=12), seed=1))
        advisor.fit(graphs[:-1], labels[:-1])
        advisor.recommend(graphs[0], 1.0)
        assert len(advisor.embedding_cache) > 0
        advisor.adapt_online(graphs[-1], labels[-1], update_epochs=1)
        assert len(advisor.embedding_cache) == 0

    def test_cache_disabled(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=16, embedding_dim=8, use_incremental=False,
            embedding_cache_size=0,
            dml=DMLConfig(epochs=2, batch_size=12), seed=1))
        advisor.fit(graphs, labels)
        assert advisor.embedding_cache is None
        assert advisor.recommend(graphs[0], 1.0).model in MODELS


class TestFusedGradients:
    """Hand-derived backwards of the fused ops vs finite differences."""

    @staticmethod
    def _numeric_grad(fn, x, eps=1e-6):
        grad = np.zeros_like(x)
        flat = x.ravel()
        out = grad.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            hi = fn()
            flat[i] = original - eps
            lo = fn()
            flat[i] = original
            out[i] = (hi - lo) / (2 * eps)
        return grad

    def test_weighted_loss_gradient(self, rng):
        from repro import nn
        from repro.core.losses import (cosine_similarity_matrix,
                                       weighted_contrastive_loss)
        emb = rng.normal(size=(6, 4))
        sims = cosine_similarity_matrix(rng.uniform(0.1, 1.0, size=(6, 3)))
        x = nn.Tensor(emb.copy(), requires_grad=True)
        loss = weighted_contrastive_loss(x, sims, tau=0.8, gamma=2.0)
        loss.backward()
        numeric = self._numeric_grad(
            lambda: weighted_contrastive_loss(
                nn.Tensor(emb), sims, tau=0.8, gamma=2.0).item(), emb)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-7)

    def test_pairwise_distances_gradient(self, rng):
        from repro import nn
        from repro.core.losses import pairwise_distances
        emb = rng.normal(size=(5, 3))
        weights = rng.normal(size=(5, 5))
        # The diagonal sits at the clipped sqrt(0 + 1e-12) kink, where the
        # derivative is ill-conditioned for finite differences.
        np.fill_diagonal(weights, 0.0)
        x = nn.Tensor(emb.copy(), requires_grad=True)
        (pairwise_distances(x) * nn.Tensor(weights)).sum().backward()
        numeric = self._numeric_grad(
            lambda: float((pairwise_distances(nn.Tensor(emb)).numpy()
                           * weights).sum()), emb)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-6)

    def test_fused_affine_relu_gradient(self, rng):
        from repro import nn
        mlp = nn.MLP([4, 6, 3], rng, output_activation="relu")
        x_data = rng.normal(size=(2, 5, 4))
        x = nn.Tensor(x_data.copy(), requires_grad=True)
        out = mlp(x)
        assert out.shape == (2, 5, 3)
        (out * out).sum().backward()
        params = mlp.parameters()
        for param in params:
            assert param.grad is not None

        def value():
            return float((mlp(nn.Tensor(x_data)).numpy() ** 2).sum())
        numeric_x = self._numeric_grad(value, x_data)
        np.testing.assert_allclose(x.grad, numeric_x, rtol=1e-4, atol=1e-6)
        w = params[0]
        numeric_w = self._numeric_grad(value, w.data)
        np.testing.assert_allclose(w.grad, numeric_w, rtol=1e-4, atol=1e-6)

    def test_gin_encoder_gradients(self, corpus, rng):
        from repro import nn
        from repro.core.graph import GraphTensorBatcher
        graphs, _ = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, hidden_dim=6,
                             embedding_dim=4, seed=0)
        # Perturb the zero-initialized biases so no pre-activation sits
        # exactly on the ReLU kink (where relu'(0)=0 by convention but a
        # central finite difference sees slope 1/2).
        for param in encoder.parameters():
            param.data += rng.uniform(0.01, 0.05, size=param.data.shape)
        batcher = GraphTensorBatcher(graphs[:4])
        idx = np.arange(4)

        def value():
            with nn.no_grad():
                out = encoder.forward_adjacency(*batcher.slice(idx))
            return float((out.numpy() ** 2).sum())

        out = encoder.forward_adjacency(*batcher.slice(idx))
        (out * out).sum().backward()
        for param in encoder.parameters():
            numeric = self._numeric_grad(value, param.data)
            np.testing.assert_allclose(param.grad, numeric,
                                       rtol=1e-4, atol=1e-6)


class TestFusedAdam:
    def test_matches_reference_loop(self, rng):
        from repro import nn

        def reference_adam_step(params, m_list, v_list, t, lr=1e-3,
                                b1=0.9, b2=0.999, eps=1e-8):
            bias1 = 1.0 - b1 ** t
            bias2 = 1.0 - b2 ** t
            for p, m, v in zip(params, m_list, v_list):
                g = p["grad"]
                m *= b1
                m += (1 - b1) * g
                v *= b2
                v += (1 - b2) * g * g
                p["data"] -= lr * (m / bias1) / (np.sqrt(v / bias2) + eps)

        shapes = [(3, 4), (4,), (2, 2)]
        datas = [rng.normal(size=s) for s in shapes]
        grads = [rng.normal(size=s) for s in shapes]
        tensors = [nn.Tensor(d.copy(), requires_grad=True) for d in datas]
        opt = nn.Adam(tensors, lr=1e-3)
        refs = [{"data": d.copy(), "grad": g} for d, g in zip(datas, grads)]
        m_list = [np.zeros_like(d) for d in datas]
        v_list = [np.zeros_like(d) for d in datas]
        for t in range(1, 4):
            for tensor, ref in zip(tensors, refs):
                tensor.grad = ref["grad"].copy()
            opt.step()
            reference_adam_step(refs, m_list, v_list, t)
        for tensor, ref in zip(tensors, refs):
            np.testing.assert_allclose(tensor.data, ref["data"],
                                       rtol=1e-12, atol=1e-14)

    def test_clip_folded_into_step(self, rng):
        from repro import nn
        data = rng.normal(size=(4, 4))
        grad = rng.normal(size=(4, 4)) * 100.0
        a = nn.Tensor(data.copy(), requires_grad=True)
        b = nn.Tensor(data.copy(), requires_grad=True)
        opt_a = nn.Adam([a], lr=1e-2)
        opt_b = nn.Adam([b], lr=1e-2)
        a.grad = grad.copy()
        b.grad = grad.copy()
        opt_a.step(grad_clip=1.0)
        nn.clip_grad_norm([b], 1.0)
        opt_b.step()
        np.testing.assert_allclose(a.data, b.data, rtol=1e-12)

    def test_rebinds_after_state_dict_load(self, rng):
        from repro import nn
        layer = nn.Linear(3, 2, rng)
        opt = nn.Adam(layer.parameters(), lr=1e-2)
        state = {k: v * 2.0 for k, v in layer.state_dict().items()}
        layer.load_state_dict(state)
        for param in layer.parameters():
            param.grad = np.ones_like(param.data)
        opt.step()
        # Updates are applied to the freshly loaded values, not stale views.
        np.testing.assert_allclose(
            layer.weight.data, state["weight"] - opt.lr / (np.sqrt(1.0) + 1e-8),
            rtol=1e-6)
