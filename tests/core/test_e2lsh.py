"""E2LSH quantized-projection index: recall on cluster-free corpora,
degenerate-pool fallbacks, incremental maintenance, and the sign-hash
recall probe's index selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import (ANNConfig, ANNIndex, E2LSHConfig,
                                  E2LSHIndex, ExactIndex, KNNPredictor,
                                  NeighborIndex, RecommendationCandidateSet,
                                  exact_search, select_neighbor_index)
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def make_label(rng):
    return DatasetLabel(MODELS, rng.uniform(1, 10, 3),
                        rng.uniform(0.001, 0.01, 3))


def embedded(rng, n, intrinsic, ambient=32, kind="uniform"):
    """Cluster-free corpus: low intrinsic dimension, rotated into a larger
    ambient space (the regime sum-pooled GIN embedding clouds live in)."""
    if kind == "uniform":
        base = rng.uniform(-1.0, 1.0, size=(n, intrinsic))
    elif kind == "shell":
        base = rng.normal(size=(n, intrinsic))
        base /= np.linalg.norm(base, axis=1, keepdims=True)
    else:
        raise ValueError(kind)
    rotation, _ = np.linalg.qr(rng.normal(size=(ambient, ambient)))
    return (base @ rotation[:intrinsic, :]).astype(np.float32)


def recall_at_k(index, queries, members, k=5):
    approx, _ = index.search(queries, members, k)
    exact, _ = exact_search(queries, members, k)
    return float(np.mean([len(set(a) & set(e)) / k
                          for a, e in zip(approx, exact)]))


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestProtocol:
    def test_satisfies_neighbor_index_protocol(self):
        assert isinstance(E2LSHIndex(), NeighborIndex)

    def test_small_corpus_equivalence(self, rng):
        """Below the candidate floor the index must be exactly exact."""
        emb = rng.normal(size=(12, 6)).astype(np.float32)
        queries = rng.normal(size=(5, 6)).astype(np.float32)
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(emb)
        for k in (1, 3):
            ai, ad = index.search(queries, emb, k)
            ei, ed = exact_search(queries, emb, k)
            np.testing.assert_array_equal(ai, ei)
            np.testing.assert_allclose(ad, ed, rtol=1e-6, atol=1e-6)


class TestClusterFreeRecall:
    """The corpora the sign hash cannot serve (no clusters to bucket)."""

    def test_uniform_corpus_where_sign_hash_degrades(self, rng):
        emb = embedded(rng, 4352, intrinsic=4)
        members, queries = emb[:4096], emb[4096:]
        # The sign hash degrades here: healthy-looking recall but pools so
        # dense it re-ranks a large slice of the corpus per query (the
        # probe's pool-fraction signal).
        sign = ANNIndex(ANNConfig(seed=0))
        sign.rebuild(members)
        sign.search(queries, members, 5)
        assert sign.last_pool_fraction > 0.05
        # The quantized lattice keeps real buckets and high recall.
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(members)
        assert recall_at_k(index, queries, members) >= 0.9
        assert index.last_fallback_fraction < 0.1

    def test_flat_corpus_where_sign_hash_falls_back_to_exact(self, rng):
        """Intrinsic dimension 2: central sign cuts give purely angular
        sectors, pools blow past max_candidates and the sign hash serves
        the exact scan; E2LSH lattice cells still tile the plane."""
        emb = embedded(rng, 4352, intrinsic=2)
        members, queries = emb[:4096], emb[4096:]
        sign = ANNIndex(ANNConfig(seed=0))
        sign.rebuild(members)
        sign.search(queries, members, 5)
        assert sign.last_fallback_fraction > 0.5
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(members)
        assert recall_at_k(index, queries, members) >= 0.9

    def test_shell_corpus_recall(self, rng):
        emb = embedded(rng, 4352, intrinsic=8, kind="shell")
        members, queries = emb[:4096], emb[4096:]
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(members)
        assert recall_at_k(index, queries, members) >= 0.9

    def test_uniform_higher_intrinsic_recall(self, rng):
        emb = embedded(rng, 4352, intrinsic=6)
        members, queries = emb[:4096], emb[4096:]
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(members)
        assert recall_at_k(index, queries, members) >= 0.9

    def test_pair_probes_do_not_hurt_recall(self, rng):
        """num_probes beyond the 2b single steps extends the walk with
        two-coordinate perturbations; recall must not regress."""
        emb = embedded(rng, 2304, intrinsic=4)
        members, queries = emb[:2048], emb[2048:]
        cfg = E2LSHConfig(seed=0, num_projections=6)
        singles = E2LSHIndex(cfg)
        singles.rebuild(members)
        base = recall_at_k(singles, queries, members)
        paired = E2LSHIndex(E2LSHConfig(seed=0, num_projections=6,
                                        num_probes=24))
        paired.rebuild(members)
        assert recall_at_k(paired, queries, members) >= base - 1e-9


@pytest.mark.slow
class TestBenchScaleRecall:
    """The ``e2lsh_search`` bench contract at full scale (CI's slow job)."""

    def test_8192_member_cluster_free_rcs(self, rng):
        emb = embedded(rng, 8704, intrinsic=4)
        members, queries = emb[:8192], emb[8192:]
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(members)
        assert recall_at_k(index, queries, members) >= 0.9
        # The pools must genuinely prune (sub-linear serving, not a
        # disguised exact scan); the wall-clock 5× contract itself is
        # measured by benchmarks/run_benchmarks.py (e2lsh_search).
        assert index.last_pool_fraction < 0.3
        assert isinstance(select_neighbor_index(members, ANNConfig(seed=0)),
                          E2LSHIndex)


class TestDegeneratePools:
    def test_identical_corpus_falls_back_to_exact(self):
        emb = np.ones((600, 8), dtype=np.float32)
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(emb)
        ai, ad = index.search(emb[:4], emb, 3)
        assert index.last_fallback_fraction == 1.0
        np.testing.assert_allclose(ad, 0.0, atol=1e-6)
        np.testing.assert_array_equal(ai, [[0, 1, 2]] * 4)

    def test_outlier_query_falls_back_to_exact(self, rng):
        emb = embedded(rng, 600, intrinsic=4)
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(emb)
        outlier = np.full((1, 32), 50.0, dtype=np.float32)
        ai, _ = index.search(outlier, emb, 3)
        ei, _ = exact_search(outlier, emb, 3)
        np.testing.assert_array_equal(ai, ei)

    def test_fixed_radius_respected(self, rng):
        emb = embedded(rng, 512, intrinsic=4)
        index = E2LSHIndex(E2LSHConfig(seed=0, radius=0.25))
        index.rebuild(emb)
        np.testing.assert_allclose(index._radii, 0.25)


class TestIncrementalMaintenance:
    def test_add_indexes_new_members(self, rng):
        emb = embedded(rng, 1200, intrinsic=4)
        index = E2LSHIndex(E2LSHConfig(seed=0, min_candidates=4))
        index.rebuild(emb[:1000])
        for row in emb[1000:]:
            index.add(row)
        assert len(index) == 1200
        target = emb[1199]
        ai, _ = index.search(target, emb, 1)
        ei, _ = exact_search(target[None, :], emb, 1)
        np.testing.assert_array_equal(ai, ei)

    def test_search_heals_from_unseen_matrix(self, rng):
        emb = embedded(rng, 600, intrinsic=4)
        index = E2LSHIndex(E2LSHConfig(seed=0))
        index.rebuild(emb[:100])
        ai, _ = index.search(emb[:4], emb, 1)
        np.testing.assert_array_equal(ai.ravel(), np.arange(4))
        assert len(index) == 600


class TestRecallProbeSelection:
    """select_neighbor_index: the sign-hash recall probe."""

    def test_clustered_corpus_keeps_sign_hash(self, rng):
        centers = rng.normal(size=(64, 16))
        assign = rng.integers(0, 64, size=4096)
        emb = (centers[assign]
               + 0.1 * rng.normal(size=(4096, 16))).astype(np.float32)
        index = select_neighbor_index(emb, ANNConfig(seed=0))
        assert isinstance(index, ANNIndex)

    def test_cluster_free_corpus_switches_to_e2lsh(self, rng):
        emb = embedded(rng, 4096, intrinsic=4)
        index = select_neighbor_index(emb, ANNConfig(seed=0))
        assert isinstance(index, E2LSHIndex)
        assert len(index) == len(emb)

    def test_small_degraded_corpus_serves_exact(self, rng):
        # Dense pools at a size where any hash walk loses to the scan.
        emb = embedded(rng, 1500, intrinsic=2)
        index = select_neighbor_index(emb, ANNConfig(seed=0))
        assert isinstance(index, ExactIndex)

    def test_auto_e2lsh_off_always_keeps_sign_hash(self, rng):
        emb = embedded(rng, 4096, intrinsic=2)
        index = select_neighbor_index(
            emb, ANNConfig(seed=0, auto_e2lsh=False))
        assert isinstance(index, ANNIndex)

    def test_exact_index_graduates_as_corpus_grows(self, rng):
        """An ExactIndex chosen while a degraded corpus was scan-sized must
        not stay pinned forever: the probe re-runs on corpus doubling and
        upgrades to E2LSH past the size floor."""
        emb = embedded(rng, 4608, intrinsic=2)
        labels = [make_label(rng) for _ in range(len(emb))]
        config = ANNConfig(threshold=512, seed=0)
        rcs = RecommendationCandidateSet(emb[:600], labels[:600], ann=config)
        assert isinstance(rcs.index, ExactIndex)
        for row, label in zip(emb[600:], labels[600:]):
            rcs.add(row, label)
        assert len(rcs) >= config.e2lsh_threshold
        assert isinstance(rcs.index, E2LSHIndex)
        assert len(rcs.index) == len(rcs)


class TestRCSIntegration:
    def test_rcs_serves_recommendations_through_e2lsh(self, rng):
        emb = embedded(rng, 4096, intrinsic=4)
        labels = [make_label(rng) for _ in range(len(emb))]
        rcs = RecommendationCandidateSet(
            emb, labels, ann=ANNConfig(threshold=1024, seed=0))
        assert isinstance(rcs.index, E2LSHIndex)
        predictor = KNNPredictor(k=5)
        queries = embedded(rng, 64, intrinsic=4)
        recs = predictor.recommend_batch(queries, rcs, 0.9)
        exact_rcs = RecommendationCandidateSet(emb, list(labels))
        exact = predictor.recommend_batch(queries, exact_rcs, 0.9)
        agreement = np.mean([a.model == e.model
                             for a, e in zip(recs, exact)])
        assert agreement >= 0.9

    def test_float32_rcs_stays_float32_through_index(self, rng):
        emb = embedded(rng, 2048, intrinsic=4)
        labels = [make_label(rng) for _ in range(len(emb))]
        rcs = RecommendationCandidateSet(
            emb, labels, ann=ANNConfig(threshold=1024, seed=0))
        assert rcs.embeddings.dtype == np.float32
        _, distances = rcs.search(emb[:8], 3)
        assert distances.dtype == np.float32
