"""GIN encoder (Eq. 5) and the DML losses (Eqs. 6–12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.encoder import GINEncoder
from repro.core.graph import FeatureGraph
from repro.core.losses import (basic_contrastive_loss,
                               cosine_similarity_matrix, pair_weights,
                               pairwise_distances, positive_negative_masks,
                               weighted_contrastive_loss)


def random_graph(n_tables, dim=10, seed=0):
    rng = np.random.default_rng(seed)
    vertices = rng.normal(size=(n_tables, dim))
    edges = np.zeros((n_tables, n_tables))
    for i in range(1, n_tables):
        edges[i - 1, i] = rng.uniform(0.2, 1.0)
    return FeatureGraph(f"g{seed}", vertices, edges)


class TestGINEncoder:
    def test_output_shape(self):
        encoder = GINEncoder(vertex_dim=10, hidden_dim=16, embedding_dim=8)
        graphs = [random_graph(3, seed=i) for i in range(4)]
        assert encoder.embed(graphs).shape == (4, 8)

    def test_padding_invariance(self):
        """Padded vertices must not change a graph's embedding."""
        encoder = GINEncoder(vertex_dim=10, hidden_dim=16, embedding_dim=8)
        g = random_graph(2, seed=3)
        alone = encoder.embed([g])
        batched = encoder.embed([g, random_graph(5, seed=4)])
        np.testing.assert_allclose(alone[0], batched[0], atol=1e-10)

    def test_edges_matter(self):
        encoder = GINEncoder(vertex_dim=10, hidden_dim=16, embedding_dim=8)
        g = random_graph(3, seed=5)
        cut = FeatureGraph(g.name, g.vertices, np.zeros_like(g.edges))
        assert not np.allclose(encoder.embed([g]), encoder.embed([cut]))

    def test_deterministic_given_seed(self):
        a = GINEncoder(10, 16, 8, seed=7)
        b = GINEncoder(10, 16, 8, seed=7)
        g = random_graph(3, seed=1)
        np.testing.assert_allclose(a.embed([g]), b.embed([g]))

    def test_gradient_reaches_epsilon(self):
        encoder = GINEncoder(10, 16, 8, seed=0)
        graphs = [random_graph(3, seed=i) for i in range(3)]
        out = encoder.encode_batch(graphs)
        (out * out).sum().backward()
        assert encoder.layers[0].epsilon.grad is not None

    def test_num_layers(self):
        encoder = GINEncoder(10, 16, 8, num_layers=3)
        assert len(encoder.layers) == 3


class TestSimilarity:
    def test_cosine_identical_is_one(self):
        labels = np.array([[1.0, 2.0], [2.0, 4.0]])
        sims = cosine_similarity_matrix(labels)
        assert sims[0, 1] == pytest.approx(1.0)

    def test_cosine_orthogonal_is_zero(self):
        labels = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cosine_similarity_matrix(labels)[0, 1] == pytest.approx(0.0)

    def test_masks_partition_offdiagonal(self):
        sims = np.array([[1.0, 0.99, 0.5],
                         [0.99, 1.0, 0.2],
                         [0.5, 0.2, 1.0]])
        pos, neg = positive_negative_masks(sims, tau=0.9)
        assert not pos.diagonal().any() and not neg.diagonal().any()
        off_diag = ~np.eye(3, dtype=bool)
        assert np.all(pos[off_diag] ^ neg[off_diag])

    def test_threshold_boundary_inclusive(self):
        sims = np.array([[1.0, 0.9], [0.9, 1.0]])
        pos, neg = positive_negative_masks(sims, tau=0.9)
        assert pos[0, 1] and not neg[0, 1]


class TestDistances:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 4))
        u = pairwise_distances(nn.Tensor(x)).numpy()
        expected = np.sqrt(((x[:, None] - x[None, :]) ** 2).sum(-1))
        # The implementation adds a 1e-12 epsilon inside the sqrt, so the
        # diagonal is 1e-6 instead of exactly 0.
        np.testing.assert_allclose(u, expected, atol=2e-6)

    def test_gradient_flows(self):
        x = nn.Tensor(np.random.default_rng(1).normal(size=(4, 3)),
                      requires_grad=True)
        pairwise_distances(x).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestWeightedContrastiveLoss:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        emb = nn.Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        labels = rng.uniform(0.1, 1.0, size=(6, 3))
        sims = cosine_similarity_matrix(labels)
        return emb, sims

    def test_finite_scalar(self):
        emb, sims = self._setup()
        loss = weighted_contrastive_loss(emb, sims, tau=0.95)
        assert np.isfinite(loss.item())

    def test_training_separates_classes(self):
        """Minimizing Eq. 9 pulls positives together, pushes negatives apart."""
        rng = np.random.default_rng(3)
        x = nn.Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        # Two similarity classes: {0..3} vs {4..7}.
        sims = np.full((8, 8), 0.2)
        sims[:4, :4] = 0.99
        sims[4:, 4:] = 0.99
        np.fill_diagonal(sims, 1.0)
        opt = nn.Adam([x], lr=0.05)
        for _ in range(150):
            loss = weighted_contrastive_loss(x, sims, tau=0.9, gamma=2.0)
            opt.zero_grad()
            loss.backward()
            opt.step()
        emb = x.data
        dist = np.sqrt(((emb[:, None] - emb[None, :]) ** 2).sum(-1))
        within = (dist[:4, :4].sum() + dist[4:, 4:].sum()) / (2 * 12)
        across = dist[:4, 4:].mean()
        assert across > 2 * within

    def test_pair_weights_match_loss_gradient(self):
        """Eqs. 11–12: |∂L_c/∂U_ij| equals the closed-form pair weights."""
        rng = np.random.default_rng(5)
        m = 5
        u_data = rng.uniform(0.5, 2.0, size=(m, m))
        u_data = (u_data + u_data.T) / 2
        np.fill_diagonal(u_data, 0.0)
        labels = rng.uniform(0.1, 1.0, size=(m, 3))
        sims = cosine_similarity_matrix(labels)
        tau, gamma = 0.95, 2.0
        positive, negative = positive_negative_masks(sims, tau)

        # Recompute Eq. 9 directly on a distance Tensor.
        u = nn.Tensor(u_data, requires_grad=True)
        sims_t = nn.Tensor(sims)
        neg_inf = nn.Tensor(np.full((m, m), -1e9))
        pos_arg = nn.where(positive, u + sims_t, neg_inf)
        neg_arg = nn.where(negative, (u + sims_t) * -1.0 + gamma, neg_inf)
        has_pos = positive.any(axis=1).astype(float)
        has_neg = negative.any(axis=1).astype(float)
        loss = (pos_arg.logsumexp(axis=1) * nn.Tensor(has_pos)
                + neg_arg.logsumexp(axis=1) * nn.Tensor(has_neg)).mean()
        loss.backward()

        w_pos, w_neg = pair_weights(u_data, sims, tau)
        grad = np.abs(u.grad) * m  # loss averages over m anchors
        for i in range(m):
            for j in range(m):
                if positive[i, j]:
                    assert grad[i, j] == pytest.approx(w_pos[i, j], rel=1e-6)
                elif negative[i, j]:
                    assert grad[i, j] == pytest.approx(w_neg[i, j], rel=1e-6)

    def test_weight_ordering_matches_example5(self):
        """Larger-distance positives and smaller-distance negatives weigh more."""
        sims = np.array([
            [1.0, 0.99, 0.99, 0.5, 0.5],
            [0.99, 1.0, 0.9, 0.4, 0.4],
            [0.99, 0.9, 1.0, 0.4, 0.4],
            [0.5, 0.4, 0.4, 1.0, 0.9],
            [0.5, 0.4, 0.4, 0.9, 1.0],
        ])
        distances = np.array([
            [0.0, 1.0, 2.0, 1.0, 3.0],
            [1.0, 0.0, 1.0, 1.0, 1.0],
            [2.0, 1.0, 0.0, 1.0, 1.0],
            [1.0, 1.0, 1.0, 0.0, 1.0],
            [3.0, 1.0, 1.0, 1.0, 0.0],
        ])
        w_pos, w_neg = pair_weights(distances, sims, tau=0.95)
        # Anchor 0: positives {1, 2} with U=1 < U=2 → larger distance weighs more.
        assert w_pos[0, 2] > w_pos[0, 1]
        # Anchor 0: negatives {3, 4} with U=1 < U=3 → smaller distance weighs more.
        assert w_neg[0, 3] > w_neg[0, 4]


class TestBasicContrastiveLoss:
    def test_finite(self):
        rng = np.random.default_rng(0)
        emb = nn.Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        sims = cosine_similarity_matrix(rng.uniform(0.1, 1, size=(6, 3)))
        loss = basic_contrastive_loss(emb, sims)
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(emb.grad).all()

    def test_margin_hinge_nonnegative(self):
        # Far-apart negatives beyond the margin contribute zero.
        emb = nn.Tensor(np.array([[0.0, 0.0], [100.0, 100.0]]))
        sims = np.array([[1.0, 0.0], [0.0, 1.0]])
        loss = basic_contrastive_loss(emb, sims, tau=0.9, gamma=2.0)
        assert loss.item() == pytest.approx(0.0)
