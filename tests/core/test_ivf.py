"""IVF coarse-partition tier: probed search, delegation edges, no-op
re-enables, and warm persistence (the O(1)-restart contract).

The wrapper's correctness story is delegation: every edge where probing
cannot help (``nprobe >= cells``, corpora below the floors, pools that
cover the corpus anyway) must be *bit-for-bit* the flat quantized tier,
and the probed path itself only narrows candidates — the float re-rank
keeps returned distances exact.  Persistence must restore the whole
stack — codebooks, coarse centroids, cell assignments, drift counters —
without a single k-means call.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.serving.quantizers as quantizers_module
from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.ivf import IVFStore, auto_cells
from repro.core.persistence import load_advisor, save_advisor
from repro.core.predictor import (PQStore, QuantizationConfig,
                                  QuantizedStore, exact_search,
                                  select_quantizer)
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def family_cloud(seed: int = 0, families: int = 32, per_family: int = 16,
                 dim: int = 16):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(families, dim)) * 4.0
    members = (centers[:, None, :]
               + 0.25 * rng.normal(size=(families, per_family, dim))
               ).reshape(-1, dim)
    queries = members[::per_family] + 0.05 * rng.normal(size=(families, dim))
    return members, queries


def ivf_config(mode: str = "int8", **overrides) -> QuantizationConfig:
    base = dict(enabled=True, mode=mode, min_size=8, overfetch=4,
                ivf=True, ivf_min_size=8)
    if mode == "pq":
        base.update(num_subspaces=4, codebook_size=32)
    base.update(overrides)
    return QuantizationConfig(**base)


@pytest.fixture
def count_kmeans(monkeypatch):
    """Count every seeded_kmeans call (codebooks *and* coarse training).

    Patched on ``repro.core.serving.quantizers`` — the canonical home after
    the predictor split; both PQ codebook training and the IVF coarse
    trainer resolve the function through that module.
    """
    calls = {"n": 0}
    real = quantizers_module.seeded_kmeans

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(quantizers_module, "seeded_kmeans", counting)
    return calls


# ----------------------------------------------------------------------
# Config validation and sizing
# ----------------------------------------------------------------------
class TestConfig:
    @pytest.mark.parametrize("bad", [dict(ivf_cells=-1), dict(nprobe=0),
                                     dict(ivf_min_size=-1)])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            QuantizationConfig(enabled=True, ivf=True, **bad)

    def test_auto_cells_is_sqrt_clipped(self):
        assert auto_cells(1) == 1
        assert auto_cells(8192) == 91        # rint(sqrt(8192))
        assert auto_cells(10**9) == 4096     # clipped at the ceiling

    def test_select_quantizer_wraps_and_tags(self):
        members, _ = family_cloud(families=8, per_family=8)
        store = select_quantizer(members, ivf_config("int8"))
        assert isinstance(store, IVFStore)
        assert store.kind == "ivf-int8"
        assert isinstance(store.store, QuantizedStore)
        pq = select_quantizer(members, ivf_config("pq"))
        assert pq.kind == "ivf-pq"
        assert isinstance(pq.store, PQStore)


# ----------------------------------------------------------------------
# Search: delegation edges and recall
# ----------------------------------------------------------------------
class TestSearch:
    @pytest.mark.parametrize("mode", ["int8", "pq"])
    def test_nprobe_at_least_cells_is_bitwise_flat(self, mode):
        """The headline edge: nprobe >= cells serves the flat tier."""
        members, queries = family_cloud()
        flat = select_quantizer(members, ivf_config(mode, ivf=False))
        ivf = select_quantizer(members, ivf_config(
            mode, ivf_cells=16, nprobe=16))
        assert isinstance(ivf, IVFStore)
        fi, fd = flat.search(queries, members, 5)
        ii, id_ = ivf.search(queries, members, 5)
        np.testing.assert_array_equal(fi, ii)
        np.testing.assert_array_equal(fd, id_)

    @pytest.mark.parametrize("mode", ["int8", "pq"])
    def test_below_ivf_floor_is_bitwise_flat(self, mode):
        members, queries = family_cloud(families=4, per_family=8)
        flat = select_quantizer(members, ivf_config(mode, ivf=False))
        ivf = select_quantizer(members, ivf_config(
            mode, ivf_cells=4, nprobe=1, ivf_min_size=len(members) + 1))
        fi, fd = flat.search(queries, members, 5)
        ii, id_ = ivf.search(queries, members, 5)
        np.testing.assert_array_equal(fi, ii)
        np.testing.assert_array_equal(fd, id_)

    @pytest.mark.parametrize("mode", ["int8", "pq"])
    def test_probed_recall_on_clustered_corpus(self, mode):
        members, queries = family_cloud()
        ivf = select_quantizer(members, ivf_config(
            mode, ivf_cells=32, nprobe=4,
            **({"num_subspaces": 16, "codebook_size": 128}
               if mode == "pq" else {})))
        idx, dist = ivf.search(queries, members, 5)
        exact_idx, exact_dist = exact_search(queries, members, 5)
        recall = np.mean([len(set(a) & set(e)) / 5
                          for a, e in zip(idx, exact_idx)])
        assert recall >= 0.95
        # Returned distances come from the float re-rank: exact for every
        # member the probe selected.
        full = np.sqrt(((queries[:, None, :] - members[idx]) ** 2
                        ).sum(axis=2))
        np.testing.assert_allclose(dist, full, rtol=1e-9, atol=1e-9)

    def test_add_assigns_to_frozen_cells_and_is_searchable(self):
        members, _ = family_cloud()
        ivf = select_quantizer(members, ivf_config(
            "int8", ivf_cells=16, nprobe=4))
        grown = np.vstack([members, members[3] + 0.01])
        ivf.add(grown[-1])
        assert len(ivf) == len(grown)
        idx, _ = ivf.search(grown[-1:], grown, 2)
        assert set(idx[0]) == {3, len(grown) - 1}


# ----------------------------------------------------------------------
# Advisor integration: no-op re-enable + warm persistence
# ----------------------------------------------------------------------
def fitted_advisor(quantization: QuantizationConfig) -> tuple:
    rng = np.random.default_rng(0)
    graphs, labels = [], []
    for i in range(24):
        tables = int(rng.integers(1, 4))
        graphs.append(FeatureGraph(f"g{i}", rng.normal(size=(tables, 12)),
                                   np.zeros((tables, tables))))
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0],
                2: [3.0, 6.0, 1.1]}[i % 3]
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    advisor = AutoCE(AutoCEConfig(
        hidden_dim=8, embedding_dim=8, knn_k=3, use_incremental=False,
        dml=DMLConfig(epochs=2, batch_size=8), seed=0,
        quantization=quantization))
    advisor.fit(graphs, labels)
    return advisor, graphs


class TestNoOpReenable:
    def test_unchanged_config_keeps_the_store(self, count_kmeans):
        """Regression: re-enabling with unchanged values must not retrain
        codebooks (it used to rebuild the store every call)."""
        advisor, _ = fitted_advisor(ivf_config(
            "int8", ivf_cells=4, nprobe=2))
        store = advisor.rcs.quantized
        assert isinstance(store, IVFStore)
        count_kmeans["n"] = 0
        advisor.set_quantization(True, mode="int8")
        assert count_kmeans["n"] == 0
        assert advisor.rcs.quantized is store

    def test_changed_mode_retrains(self, count_kmeans):
        advisor, _ = fitted_advisor(ivf_config(
            "int8", ivf_cells=4, nprobe=2))
        count_kmeans["n"] = 0
        advisor.set_quantization(True, mode="pq")
        assert count_kmeans["n"] > 0
        assert advisor.rcs.quantized.kind == "ivf-pq"


class TestWarmPersistence:
    def test_reload_is_byte_identical_with_zero_kmeans(self, tmp_path,
                                                       count_kmeans):
        advisor, graphs = fitted_advisor(ivf_config(
            "pq", ivf_cells=4, nprobe=2))
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        count_kmeans["n"] = 0
        node = load_advisor(path)
        assert count_kmeans["n"] == 0, \
            "warm load must attach persisted codebooks, not retrain"
        restored = node.rcs.quantized
        original = advisor.rcs.quantized
        assert isinstance(restored, IVFStore)
        np.testing.assert_array_equal(restored.centroids,
                                      original.centroids)
        np.testing.assert_array_equal(restored.codes, original.codes)
        qi, qd = original.search(advisor.rcs.embeddings[:8],
                                 advisor.rcs.embeddings, 5)
        ri, rd = restored.search(node.rcs.embeddings[:8],
                                node.rcs.embeddings, 5)
        np.testing.assert_array_equal(qi, ri)
        np.testing.assert_array_equal(qd, rd)
        before = [r.model for r in advisor.recommend_batch(graphs[:6], 0.9)]
        after = [r.model for r in node.recommend_batch(graphs[:6], 0.9)]
        assert before == after

    def test_drift_counters_survive_reload(self, tmp_path):
        """Regression: drift accounting used to silently reset on load,
        hiding accumulated quantizer rot from the recalibration policy."""
        advisor, _ = fitted_advisor(ivf_config(
            "int8", ivf_cells=4, nprobe=2))
        base = advisor.rcs.quantized.store
        base._added_since_calibration = 5
        base._clipped_since_calibration = 2
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path).rcs.quantized.store
        assert reloaded._added_since_calibration == 5
        assert reloaded._clipped_since_calibration == 2

    def test_rows_only_save_retrains_on_load(self, tmp_path, count_kmeans):
        advisor, graphs = fitted_advisor(ivf_config(
            "int8", ivf_cells=4, nprobe=2))
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path, include_quantizer_state=False)
        count_kmeans["n"] = 0
        node = load_advisor(path)
        assert count_kmeans["n"] > 0, "cold load retrains from the rows"
        # Same rows + same seeded k-means: the retrained store still
        # serves the saved node's answers.
        before = [r.model for r in advisor.recommend_batch(graphs[:6], 0.9)]
        after = [r.model for r in node.recommend_batch(graphs[:6], 0.9)]
        assert before == after
