"""Metamorphic invariance suite for the serving stack.

One parametrized harness runs every property against all serving paths —
exact scan, sign-hash LSH, quantized-projection E2LSH, the int8 candidate
tier, the product-quantization tier, and the LSH families with quantized
re-rank pools (int8 and PQ codes ranking the padded pools) — via the
``family`` pin on :class:`ANNConfig` (no probe-dependent selection, so
each path is exercised deterministically):

* advisor level: recommendations are invariant under dataset **row
  permutation** (column statistics are order-free), **column permutation**
  (the vertex feature layout moves, but the learned metric keeps the
  recommendation stable) and **duplicate-query batching** (batched serving
  must agree with itself and with single-query serving);
* index level: KNN rankings are invariant under a **global embedding
  translation** (Euclidean distances are translation-free; every index
  family must preserve that through its own hashing/quantization).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.ivf import IVFStore
from repro.core.predictor import (ANNConfig, ANNIndex, E2LSHConfig,
                                  E2LSHIndex, ExactIndex, PQStore,
                                  QuantizationConfig, QuantizedStore)
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.db.schema import Dataset
from repro.db.table import Table
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")
PATHS = ("exact", "sign", "e2lsh", "quantized", "pq", "sign-int8",
         "e2lsh-int8", "e2lsh-pq", "ivf-int8", "ivf-pq")


# ----------------------------------------------------------------------
# Dataset transformations (the metamorphic relations)
# ----------------------------------------------------------------------
def permute_rows(dataset: Dataset, seed: int) -> Dataset:
    """Jointly permute the data-column rows of every table."""
    rng = np.random.default_rng(seed)
    tables = []
    for name, table in dataset.tables.items():
        perm = rng.permutation(table.num_rows)
        data = set(table.data_columns())
        tables.append(Table(name, {
            c: (v[perm] if c in data else v)
            for c, v in table.columns.items()}))
    return Dataset(dataset.name, tables, dataset.foreign_keys)


def permute_columns(dataset: Dataset, seed: int) -> Dataset:
    """Reorder the data columns of every table (contents untouched)."""
    rng = np.random.default_rng(seed)
    tables = []
    for name, table in dataset.tables.items():
        data = table.data_columns()
        shuffled = [data[i] for i in rng.permutation(len(data))]
        keys = [c for c in table.columns if c not in data]
        tables.append(Table(name, {c: table.columns[c]
                                   for c in keys + shuffled}))
    return Dataset(dataset.name, tables, dataset.foreign_keys)


# ----------------------------------------------------------------------
# The eight serving paths
# ----------------------------------------------------------------------
def sign_ann() -> ANNConfig:
    return ANNConfig(threshold=8, family="sign", min_candidates=4,
                     num_probes=8, seed=0)


def e2lsh_ann() -> ANNConfig:
    return ANNConfig(threshold=8, family="e2lsh", seed=0,
                     e2lsh=E2LSHConfig(seed=0, num_tables=12, num_probes=32,
                                       min_candidates=4))


def int8_quant(overfetch: int = 4) -> QuantizationConfig:
    return QuantizationConfig(enabled=True, mode="int8", min_size=8,
                              overfetch=overfetch)


def pq_quant(overfetch: int = 4) -> QuantizationConfig:
    return QuantizationConfig(enabled=True, mode="pq", num_subspaces=4,
                              codebook_size=16, min_size=8,
                              overfetch=overfetch)


def ivf_int8_quant() -> QuantizationConfig:
    # Few cells and nprobe < cells so the probed scan genuinely engages
    # on the 36-member advisor corpus (nprobe >= cells would delegate).
    return QuantizationConfig(enabled=True, mode="int8", min_size=8,
                              overfetch=4, ivf=True, ivf_cells=4, nprobe=2,
                              ivf_min_size=8)


def ivf_pq_quant() -> QuantizationConfig:
    return QuantizationConfig(enabled=True, mode="pq", num_subspaces=4,
                              codebook_size=16, min_size=8, overfetch=4,
                              ivf=True, ivf_cells=4, nprobe=2,
                              ivf_min_size=8)


def path_config(path: str) -> AutoCEConfig:
    config = AutoCEConfig(hidden_dim=16, embedding_dim=8, knn_k=3,
                          use_incremental=False,
                          dml=DMLConfig(epochs=3, batch_size=8), seed=0)
    if path == "exact":
        config.ann = ANNConfig(threshold=0)
    elif path == "sign":
        config.ann = sign_ann()
    elif path == "e2lsh":
        config.ann = e2lsh_ann()
    elif path == "quantized":
        config.ann = ANNConfig(threshold=0)
        config.quantization = int8_quant()
    elif path == "pq":
        config.ann = ANNConfig(threshold=0)
        config.quantization = pq_quant()
    elif path == "sign-int8":
        # Low overfetch so the padded pools are wide enough for the
        # code-space narrowing to actually engage on this corpus.
        config.ann = sign_ann()
        config.quantization = int8_quant(overfetch=2)
    elif path == "e2lsh-int8":
        config.ann = e2lsh_ann()
        config.quantization = int8_quant(overfetch=2)
    elif path == "e2lsh-pq":
        config.ann = e2lsh_ann()
        config.quantization = pq_quant(overfetch=2)
    elif path == "ivf-int8":
        config.ann = ANNConfig(threshold=0)
        config.quantization = ivf_int8_quant()
    elif path == "ivf-pq":
        config.ann = ANNConfig(threshold=0)
        config.quantization = ivf_pq_quant()
    else:
        raise ValueError(path)
    return config


@pytest.fixture(scope="module")
def corpus():
    datasets = [
        generate_dataset(random_spec(2000 + i, ranges={"num_tables": (1, 4)}))
        for i in range(36)
    ]
    labels = []
    for i in range(36):
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0],
                2: [3.0, 6.0, 1.1]}[i % 3]
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    return datasets, labels


@pytest.fixture(scope="module")
def advisors(corpus):
    """One fitted advisor per serving path (identical weights: same seed)."""
    datasets, labels = corpus
    built = {}
    for path in PATHS:
        advisor = AutoCE(path_config(path))
        advisor.fit(datasets, labels)
        built[path] = advisor
    # Every path must actually run the machinery it names.
    assert built["exact"].rcs.index is None
    assert isinstance(built["sign"].rcs.index, ANNIndex)
    assert isinstance(built["e2lsh"].rcs.index, E2LSHIndex)
    assert isinstance(built["quantized"].rcs.quantized, QuantizedStore)
    assert isinstance(built["pq"].rcs.quantized, PQStore)
    assert isinstance(built["sign-int8"].rcs.index, ANNIndex)
    assert isinstance(built["sign-int8"].rcs.quantized, QuantizedStore)
    assert isinstance(built["e2lsh-int8"].rcs.index, E2LSHIndex)
    assert isinstance(built["e2lsh-int8"].rcs.quantized, QuantizedStore)
    assert isinstance(built["e2lsh-pq"].rcs.index, E2LSHIndex)
    assert isinstance(built["e2lsh-pq"].rcs.quantized, PQStore)
    assert isinstance(built["ivf-int8"].rcs.quantized, IVFStore)
    assert built["ivf-int8"].rcs.quantized.kind == "ivf-int8"
    assert isinstance(built["ivf-pq"].rcs.quantized, IVFStore)
    assert built["ivf-pq"].rcs.quantized.kind == "ivf-pq"
    return built


def recommendation_view(rec):
    """The externally observable recommendation: winner + full ranking."""
    return rec.model, [name for name, _ in rec.ranking()]


# ----------------------------------------------------------------------
# Advisor-level invariances
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path", PATHS)
class TestRecommendationInvariance:
    def test_row_permutation(self, advisors, corpus, path):
        advisor = advisors[path]
        queries = corpus[0][:6]
        base = advisor.recommend_batch(queries, 0.9)
        permuted = advisor.recommend_batch(
            [permute_rows(d, 7 + i) for i, d in enumerate(queries)], 0.9)
        for a, b in zip(base, permuted):
            assert recommendation_view(a) == recommendation_view(b)

    def test_column_permutation(self, advisors, corpus, path):
        advisor = advisors[path]
        queries = corpus[0][:6]
        base = advisor.recommend_batch(queries, 0.9)
        permuted = advisor.recommend_batch(
            [permute_columns(d, 11 + i) for i, d in enumerate(queries)], 0.9)
        for a, b in zip(base, permuted):
            assert recommendation_view(a) == recommendation_view(b)

    def test_duplicate_query_batching(self, advisors, corpus, path):
        advisor = advisors[path]
        unique = corpus[0][:4]
        pattern = [0, 1, 0, 2, 3, 1, 0, 2]
        batched = advisor.recommend_batch([unique[i] for i in pattern], 0.9)
        singles = advisor.recommend_batch(unique, 0.9)
        for position, i in enumerate(pattern):
            a, b = batched[position], singles[i]
            assert recommendation_view(a) == recommendation_view(b)
            np.testing.assert_array_equal(a.neighbor_indices,
                                          b.neighbor_indices)
            np.testing.assert_array_equal(a.score_vector, b.score_vector)

    def test_single_and_batched_serving_agree(self, advisors, corpus, path):
        advisor = advisors[path]
        queries = corpus[0][:4]
        batched = advisor.recommend_batch(queries, 0.9)
        for dataset, b in zip(queries, batched):
            a = advisor.recommend(dataset, 0.9)
            assert recommendation_view(a) == recommendation_view(b)
            np.testing.assert_array_equal(a.neighbor_indices,
                                          b.neighbor_indices)


# ----------------------------------------------------------------------
# Index-level invariance: global embedding translation
# ----------------------------------------------------------------------
def family_cloud(seed: int = 0, families: int = 64, per_family: int = 24,
                 dim: int = 16):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(families, dim)) * 4.0
    members = (centers[:, None, :]
               + 0.25 * rng.normal(size=(families, per_family, dim))
               ).reshape(-1, dim)
    queries = members[::per_family] + 0.05 * rng.normal(size=(families, dim))
    return members, queries


def make_searcher(path: str, members: np.ndarray):
    store = None
    if path == "exact":
        index = ExactIndex()
    elif path in ("sign", "sign-int8"):
        index = ANNIndex(ANNConfig(seed=0, num_probes=8))
        index.rebuild(members)
        if path == "sign-int8":
            store = QuantizedStore(members, QuantizationConfig(
                enabled=True, min_size=16, overfetch=2))
    elif path in ("e2lsh", "e2lsh-int8", "e2lsh-pq"):
        # Probe-rich configuration: the lattice offsets realign under a
        # translation, so invariance requires the walk to recover the exact
        # top-k on both alignments.
        index = E2LSHIndex(E2LSHConfig(seed=0, num_tables=16, num_probes=64,
                                       radius_scale=3.0))
        index.rebuild(members)
        if path == "e2lsh-int8":
            store = QuantizedStore(members, QuantizationConfig(
                enabled=True, min_size=16, overfetch=2))
        elif path == "e2lsh-pq":
            # One dim per subspace: reconstruction error far below the
            # within-family spacing, so the narrowed pools keep the exact
            # top-k on both translation alignments.
            store = PQStore(members, QuantizationConfig(
                enabled=True, mode="pq", num_subspaces=16, codebook_size=128,
                min_size=16, overfetch=2))
    elif path == "quantized":
        index = ExactIndex()
        store = QuantizedStore(members, QuantizationConfig(
            enabled=True, min_size=16, overfetch=8))
    elif path == "pq":
        index = ExactIndex()
        store = PQStore(members, QuantizationConfig(
            enabled=True, mode="pq", num_subspaces=8, codebook_size=64,
            min_size=16, overfetch=8))
    elif path == "ivf-int8":
        # One coarse cell per family, probing 8: the true top-k live in
        # the query's own (certainly probed) cell, so the probed scan
        # keeps the exact ranking on both translation alignments.
        index = ExactIndex()
        store = IVFStore(members, QuantizationConfig(
            enabled=True, mode="int8", min_size=16, overfetch=8,
            ivf=True, ivf_cells=64, nprobe=8, ivf_min_size=16))
    elif path == "ivf-pq":
        index = ExactIndex()
        store = IVFStore(members, QuantizationConfig(
            enabled=True, mode="pq", num_subspaces=16, codebook_size=128,
            min_size=16, overfetch=8, ivf=True, ivf_cells=64, nprobe=8,
            ivf_min_size=16))
    else:
        raise ValueError(path)
    return lambda queries, k: index.search(queries, members, k, store=store)


@pytest.mark.parametrize("path", PATHS)
def test_translation_invariance_of_knn_rankings(path):
    members, queries = family_cloud()
    shift = np.random.default_rng(42).normal(size=members.shape[1]) * 3.0
    base_idx, base_dist = make_searcher(path, members)(queries, 5)
    moved_idx, moved_dist = make_searcher(path, members + shift)(
        queries + shift, 5)
    np.testing.assert_array_equal(base_idx, moved_idx)
    # Distances are translation-free too, up to Gram-identity cancellation
    # noise on the shifted coordinates.
    np.testing.assert_allclose(base_dist, moved_dist, rtol=1e-5, atol=1e-7)
