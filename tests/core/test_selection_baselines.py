"""The five selection baselines of Sec. VII-A."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.registry import DATA_DRIVEN_MODELS, QUERY_DRIVEN_MODELS
from repro.core.selection_baselines import (LearningAllSelector, MLPSelector,
                                            OnlineSelectorConfig,
                                            RawFeatureKnnSelector,
                                            RegressionSelector, RuleSelector,
                                            SamplingSelector)
from repro.testbed.runner import TestbedConfig
from tests.core.test_advisor_stack import MODELS, synthetic_corpus


@pytest.fixture(scope="module")
def corpus():
    return synthetic_corpus(n=24)


class TestMLPSelector:
    def test_learns_synthetic_mapping(self, corpus):
        graphs, labels = corpus
        selector = MLPSelector(epochs=40, seed=0)
        selector.fit(graphs, labels)
        hits = sum(selector.recommend(g, 1.0) == lab.best_model(1.0)
                   for g, lab in zip(graphs, labels))
        assert hits >= len(graphs) * 0.6

    def test_returns_valid_model(self, corpus):
        graphs, labels = corpus
        selector = MLPSelector(epochs=5, seed=0)
        selector.fit(graphs, labels)
        assert selector.recommend(graphs[0], 0.5) in MODELS


class TestRegressionSelector:
    def test_learns_synthetic_mapping(self, corpus):
        graphs, labels = corpus
        selector = RegressionSelector(epochs=40, seed=0)
        selector.fit(graphs, labels)
        hits = sum(selector.recommend(g, 1.0) == lab.best_model(1.0)
                   for g, lab in zip(graphs, labels))
        assert hits >= len(graphs) * 0.5

    def test_name(self):
        assert RegressionSelector().name == "Without-DML"


class TestRuleSelector:
    def test_single_table_picks_data_driven(self, corpus):
        from repro.testbed.scores import DatasetLabel
        graphs, _ = corpus
        labels = [DatasetLabel(tuple(DATA_DRIVEN_MODELS + QUERY_DRIVEN_MODELS),
                               np.arange(6) + 1.0, np.arange(6) + 1.0)
                  for _ in graphs]
        selector = RuleSelector(seed=0)
        selector.fit(graphs, labels)
        single = next(g for g in graphs if g.num_tables == 1)
        multi = next(g for g in graphs if g.num_tables > 1)
        for _ in range(5):
            assert selector.recommend(single, 1.0) in DATA_DRIVEN_MODELS
            assert selector.recommend(multi, 1.0) in QUERY_DRIVEN_MODELS

    def test_falls_back_when_pool_missing(self, corpus):
        graphs, labels = corpus  # labels use models A/B/C
        selector = RuleSelector(seed=0)
        selector.fit(graphs, labels)
        assert selector.recommend(graphs[0], 1.0) in MODELS


class TestRawKnn:
    def test_nearest_raw_graph_wins(self, corpus):
        graphs, labels = corpus
        selector = RawFeatureKnnSelector(k=1)
        selector.fit(graphs, labels)
        # Recommending a training graph returns its own best model (k=1,
        # distance 0 to itself).
        for g, lab in list(zip(graphs, labels))[:6]:
            assert selector.recommend(g, 1.0) == lab.best_model(1.0)

    def test_handles_larger_target(self, corpus):
        graphs, labels = corpus
        selector = RawFeatureKnnSelector(k=2)
        selector.fit(graphs, labels)
        big = graphs[0].padded(6)
        assert selector.recommend(big, 1.0) in MODELS


TINY_ONLINE = OnlineSelectorConfig(
    sample_fraction=0.5,
    testbed=TestbedConfig(num_train_queries=25, num_test_queries=8,
                          sample_size=200, mscn_epochs=5, lwnn_epochs=5,
                          made_epochs=1, made_hidden=12, made_samples=8))


class TestOnlineSelectors:
    def test_sampling_selector_runs_and_caches(self, small_dataset):
        selector = SamplingSelector(TINY_ONLINE)
        model = selector.recommend_dataset(small_dataset, 1.0)
        assert model in ("BayesCard", "DeepDB", "NeuroCard", "MSCN",
                         "LW-NN", "LW-XGB", "UAE")
        assert small_dataset.name in selector._label_cache
        # Second call with another weight reuses the cached label.
        import time
        start = time.perf_counter()
        selector.recommend_dataset(small_dataset, 0.5)
        assert time.perf_counter() - start < 0.1

    def test_learning_all_selector_runs(self, small_dataset):
        selector = LearningAllSelector(TINY_ONLINE)
        assert selector.recommend_dataset(small_dataset, 0.9) in (
            "BayesCard", "DeepDB", "NeuroCard", "MSCN", "LW-NN", "LW-XGB", "UAE")

    def test_graph_api_rejected(self, corpus):
        graphs, _ = corpus
        with pytest.raises(TypeError):
            SamplingSelector(TINY_ONLINE).recommend(graphs[0], 1.0)
        with pytest.raises(TypeError):
            LearningAllSelector(TINY_ONLINE).recommend(graphs[0], 1.0)
