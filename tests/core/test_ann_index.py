"""ANN serving index: protocol, equivalence, recall, auto-selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import (ANNConfig, ANNIndex, ExactIndex,
                                  KNNPredictor, NeighborIndex,
                                  RecommendationCandidateSet, exact_search)
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def make_label(rng):
    return DatasetLabel(MODELS, rng.uniform(1, 10, 3),
                        rng.uniform(0.001, 0.01, 3))


def clustered(rng, n, dim=16, clusters=32, sigma=0.15):
    centers = rng.normal(size=(clusters, dim))
    assign = rng.integers(0, clusters, size=n)
    return centers[assign] + sigma * rng.normal(size=(n, dim)), centers


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestProtocol:
    def test_both_indexes_satisfy_protocol(self):
        assert isinstance(ExactIndex(), NeighborIndex)
        assert isinstance(ANNIndex(), NeighborIndex)

    def test_exact_index_matches_exact_search(self, rng):
        emb = rng.normal(size=(40, 8))
        queries = rng.normal(size=(5, 8))
        idx, dist = ExactIndex().search(queries, emb, 3)
        ei, ed = exact_search(queries, emb, 3)
        np.testing.assert_array_equal(idx, ei)
        np.testing.assert_allclose(dist, ed)


class TestANNFallsBackToExact:
    """Below ``min_candidates`` corpus sizes the index must be exact."""

    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    def test_small_corpus_equivalence(self, rng, n):
        emb = rng.normal(size=(n, 6))
        queries = rng.normal(size=(8, 6))
        index = ANNIndex(ANNConfig(seed=0))
        index.rebuild(emb)
        for k in (1, 2, 5):
            ai, ad = index.search(queries, emb, k)
            ei, ed = exact_search(queries, emb, min(k, n))
            np.testing.assert_array_equal(ai, ei)
            np.testing.assert_allclose(ad, ed, rtol=1e-9, atol=1e-9)

    def test_sparse_buckets_fall_back_per_query(self, rng):
        emb, centers = clustered(rng, 400, clusters=8)
        index = ANNIndex(ANNConfig(min_candidates=16, seed=0))
        index.rebuild(emb)
        # A query far outside every cluster hashes into empty buckets; the
        # per-query fallback must still return the true neighbors.
        outlier = np.full((1, emb.shape[1]), 40.0)
        ai, _ = index.search(outlier, emb, 3)
        ei, _ = exact_search(outlier, emb, 3)
        np.testing.assert_array_equal(ai, ei)


class TestANNRecall:
    def test_high_recall_on_clustered_corpus(self, rng):
        emb, centers = clustered(rng, 2000, clusters=40)
        queries = (centers[rng.integers(0, 40, size=64)]
                   + 0.15 * rng.normal(size=(64, emb.shape[1])))
        index = ANNIndex(ANNConfig(seed=0))
        index.rebuild(emb)
        ai, _ = index.search(queries, emb, 5)
        ei, _ = exact_search(queries, emb, 5)
        recall = np.mean([len(set(a) & set(e)) / 5 for a, e in zip(ai, ei)])
        assert recall >= 0.95

    def test_distances_are_sorted_and_exact(self, rng):
        emb, centers = clustered(rng, 1200, clusters=24)
        queries = rng.normal(size=(16, emb.shape[1]))
        index = ANNIndex(ANNConfig(seed=0))
        index.rebuild(emb)
        ai, ad = index.search(queries, emb, 4)
        assert np.all(np.diff(ad, axis=1) >= 0)
        # Reported distances are true Euclidean distances to the members.
        for q in range(len(queries)):
            true = np.sqrt(((emb[ai[q]] - queries[q]) ** 2).sum(axis=1))
            np.testing.assert_allclose(ad[q], true, rtol=1e-9, atol=1e-9)


class TestIncrementalMaintenance:
    def test_add_indexes_new_members(self, rng):
        emb, _ = clustered(rng, 600, clusters=12)
        index = ANNIndex(ANNConfig(min_candidates=4, seed=0))
        index.rebuild(emb[:500])
        for row in emb[500:]:
            index.add(row)
        assert len(index) == 600
        # A query placed exactly on a late addition must find it.
        target = emb[599]
        ai, _ = index.search(target, emb, 1)
        ei, _ = exact_search(target[None, :], emb, 1)
        np.testing.assert_array_equal(ai, ei)

    def test_search_heals_from_unseen_matrix(self, rng):
        emb, _ = clustered(rng, 300, clusters=6)
        index = ANNIndex(ANNConfig(seed=0))
        index.rebuild(emb[:100])
        # The matrix grew without the index being told: it must re-index
        # rather than serve results over a stale view.
        ai, _ = index.search(emb[:4], emb, 1)
        np.testing.assert_array_equal(ai.ravel(), np.arange(4))
        assert len(index) == 300


class TestRCSAutoSelection:
    def test_index_attached_when_threshold_crossed(self, rng):
        # auto_e2lsh off: this test pins the sign-hash attach mechanics
        # (the recall-probe selection has its own tests in test_e2lsh.py).
        ann = ANNConfig(threshold=64, min_candidates=4, seed=0,
                        auto_e2lsh=False)
        rcs = RecommendationCandidateSet(ann=ann)
        emb, _ = clustered(rng, 80, dim=8, clusters=4)
        for i, row in enumerate(emb):
            rcs.add(row, make_label(rng))
            if len(rcs) < 64:
                assert rcs.index is None
        assert isinstance(rcs.index, ANNIndex)
        assert len(rcs.index) == len(rcs)

    def test_threshold_zero_disables_ann(self, rng):
        rcs = RecommendationCandidateSet(ann=ANNConfig(threshold=0))
        for row in rng.normal(size=(40, 4)):
            rcs.add(row, make_label(rng))
        assert rcs.index is None

    def test_replace_embeddings_rebuilds_index(self, rng):
        ann = ANNConfig(threshold=16, min_candidates=4, seed=0,
                        auto_e2lsh=False)
        emb, _ = clustered(rng, 64, dim=8, clusters=4)
        labels = [make_label(rng) for _ in range(64)]
        rcs = RecommendationCandidateSet(emb, labels, ann=ann)
        assert isinstance(rcs.index, ANNIndex)
        shifted = emb + 3.0
        rcs.replace_embeddings(shifted)
        ai, _ = rcs.search(shifted[:3], 2)
        ei, _ = exact_search(shifted[:3], shifted, 2)
        np.testing.assert_array_equal(ai, ei)

    def test_predictor_equivalent_through_rcs_search(self, rng):
        """ANN-vs-exact equivalence at sizes where ANN must be exact."""
        emb, _ = clustered(rng, 48, dim=8, clusters=4)
        labels = [make_label(rng) for _ in range(48)]
        with_ann = RecommendationCandidateSet(
            emb, list(labels), ann=ANNConfig(threshold=16, seed=0))
        without = RecommendationCandidateSet(emb, list(labels))
        # The recall probe may pick either LSH family at this size; both
        # must serve exact results through the per-query fallback.
        assert isinstance(with_ann.index, NeighborIndex)
        predictor = KNNPredictor(k=3)
        queries = rng.normal(size=(12, 8))
        recs_a = predictor.recommend_batch(queries, with_ann, 0.8)
        recs_e = predictor.recommend_batch(queries, without, 0.8)
        for a, e in zip(recs_a, recs_e):
            assert a.model == e.model
            np.testing.assert_array_equal(a.neighbor_indices,
                                          e.neighbor_indices)
            np.testing.assert_allclose(a.score_vector, e.score_vector)
