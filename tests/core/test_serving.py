"""Scale-out serving: persistent embedding cache, parallel featurization,
drift-detector degenerate cases, and the killed-and-reloaded node path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.online import DriftDetector
from repro.core.persistence import load_advisor, save_advisor
from repro.core.predictor import ANNConfig, RecommendationCandidateSet
from repro.datagen.multi_table import generate_dataset
from repro.datagen.spec import random_spec
from repro.testbed.scores import DatasetLabel
from repro.utils.cache import PersistentLRUCache

MODELS = ("A", "B", "C")


def tiny_corpus(n=16, dim=10, seed=3):
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, dim)) * 0.3
        vertices[:, 0] += float(i % 3)
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.4
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        labels.append(DatasetLabel(MODELS, rng.uniform(1, 9, 3),
                                   rng.uniform(0.001, 0.01, 3)))
    return graphs, labels


def fast_config(**overrides):
    base = dict(hidden_dim=16, embedding_dim=8, use_incremental=False,
                dml=DMLConfig(epochs=4, batch_size=8, seed=0), seed=0)
    base.update(overrides)
    return AutoCEConfig(**base)


class TestPersistentServingCache:
    def test_reloaded_node_serves_repeats_without_gin_forward(self, tmp_path):
        graphs, labels = tiny_corpus()
        advisor = AutoCE(fast_config(
            embedding_cache_dir=str(tmp_path / "emb")))
        advisor.fit_graphs(graphs, labels)
        first = advisor.recommend_batch(graphs[:6], 0.9)   # populates disk
        save_advisor(advisor, str(tmp_path / "advisor.npz"))
        del advisor                                        # node killed

        reloaded = load_advisor(str(tmp_path / "advisor.npz"))
        forwards = []
        original = reloaded.encoder.embed
        reloaded.encoder.embed = lambda batch: forwards.append(len(batch)) or original(batch)
        replay = reloaded.recommend_batch(graphs[:6], 0.9)
        assert forwards == []                              # zero GIN forwards
        assert isinstance(reloaded.embedding_cache, PersistentLRUCache)
        assert reloaded.embedding_cache.disk_hits == 6
        assert [r.model for r in replay] == [r.model for r in first]
        for a, b in zip(replay, first):
            np.testing.assert_allclose(a.score_vector, b.score_vector)

    def test_retraining_invalidates_persistent_entries(self, tmp_path):
        graphs, labels = tiny_corpus()
        advisor = AutoCE(fast_config(
            embedding_cache_dir=str(tmp_path / "emb")))
        advisor.fit_graphs(graphs, labels)
        advisor.recommend(graphs[0], 0.9)
        generation = advisor.embedding_generation()
        advisor.adapt_online(graphs[1], labels[1], update_epochs=1)
        assert advisor.embedding_generation() != generation
        # The old entry must not be served under the new encoder.
        forwards = []
        original = advisor.encoder.embed
        advisor.encoder.embed = lambda batch: forwards.append(len(batch)) or original(batch)
        advisor.recommend(graphs[0], 0.9)
        assert forwards == [1]

    def test_generation_is_weight_content_hash(self, tmp_path):
        graphs, labels = tiny_corpus()
        a = AutoCE(fast_config()).fit_graphs(graphs, labels)
        b = AutoCE(fast_config()).fit_graphs(graphs, labels)
        assert a.embedding_generation() == b.embedding_generation()
        b.encoder.parameters()[0].data[0] += 1e-9
        b._generation = None
        assert a.embedding_generation() != b.embedding_generation()

    def test_in_memory_default_unchanged(self):
        graphs, labels = tiny_corpus()
        advisor = AutoCE(fast_config())
        advisor.fit_graphs(graphs, labels)
        advisor.recommend(graphs[0], 0.9)
        advisor.recommend(graphs[0], 0.9)
        assert advisor.embedding_cache.hits == 1
        assert not isinstance(advisor.embedding_cache, PersistentLRUCache)


class TestParallelFeaturize:
    def test_threaded_featurization_matches_serial(self):
        datasets = [generate_dataset(random_spec(100 + i,
                                                 ranges={"num_tables": (1, 3)}))
                    for i in range(6)]
        serial = AutoCE(AutoCEConfig(featurize_workers=1))
        threaded = AutoCE(AutoCEConfig(featurize_workers=4))
        graphs_s = serial.featurize_many(datasets)
        graphs_t = threaded.featurize_many(datasets)
        for a, b in zip(graphs_s, graphs_t):
            assert a.name == b.name
            np.testing.assert_array_equal(a.vertices, b.vertices)
            np.testing.assert_array_equal(a.edges, b.edges)

    def test_prebuilt_graphs_pass_through(self):
        graphs, _ = tiny_corpus(4)
        advisor = AutoCE(AutoCEConfig(featurize_workers=4))
        assert advisor.featurize_many(graphs) == graphs

    def test_worker_auto_mode(self):
        advisor = AutoCE(AutoCEConfig(featurize_workers=0))
        datasets = [generate_dataset(random_spec(7, ranges={"num_tables": (1, 2)}))
                    for _ in range(2)]
        graphs = advisor.featurize_many(datasets)
        assert all(isinstance(g, FeatureGraph) for g in graphs)


class TestAdvisorANNSelection:
    def test_rcs_carries_advisor_ann_config(self):
        graphs, labels = tiny_corpus()
        ann = ANNConfig(threshold=8, min_candidates=64, seed=0)
        advisor = AutoCE(fast_config(ann=ann))
        advisor.fit_graphs(graphs, labels)
        assert advisor.rcs.ann_config is ann
        assert advisor.rcs.index is not None       # 16 members >= threshold 8
        rec = advisor.recommend(graphs[0], 0.9)
        assert rec.model in MODELS

    def test_default_threshold_keeps_small_corpora_exact(self):
        graphs, labels = tiny_corpus()
        advisor = AutoCE(fast_config())
        advisor.fit_graphs(graphs, labels)
        assert advisor.rcs.index is None


class TestDriftDetectorDegenerateRCS:
    def test_single_member_rcs_never_flags_drift(self):
        rcs = RecommendationCandidateSet(
            np.zeros((1, 4)),
            [DatasetLabel(MODELS, [1, 2, 3], [0.1, 0.2, 0.3])])
        detector = DriftDetector()
        assert detector.threshold(rcs) == np.inf
        assert not detector.is_drifted(np.full(4, 100.0), rcs)

    def test_empty_rcs_never_flags_drift(self):
        rcs = RecommendationCandidateSet()
        assert DriftDetector().threshold(rcs) == np.inf

    def test_two_members_restore_normal_behaviour(self):
        label = DatasetLabel(MODELS, [1, 2, 3], [0.1, 0.2, 0.3])
        rcs = RecommendationCandidateSet(
            np.array([[0.0, 0.0], [1.0, 0.0]]), [label, label])
        detector = DriftDetector()
        assert np.isfinite(detector.threshold(rcs))
        assert detector.is_drifted(np.array([50.0, 50.0]), rcs)
        assert not detector.is_drifted(np.array([0.1, 0.0]), rcs)
