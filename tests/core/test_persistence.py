"""Round-trip tests for advisor persistence (save_advisor / load_advisor)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig
from repro.core.graph import FeatureGraph
from repro.core.persistence import (FORMAT_VERSION, AdvisorLoadError,
                                    _label_from_dict, _label_to_dict,
                                    load_advisor, save_advisor)
from repro.testbed.faults import FaultPlan
from repro.testbed.scores import DatasetLabel, ScoreLabel

MODELS = ("A", "B", "C")


def tiny_corpus(n=12, dim=10, seed=3):
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        kind = i % 3
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, dim)) * 0.3
        vertices[:, 0] += {0: 2.0, 1: -2.0, 2: 0.0}[kind]
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.4
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0], 2: [3.0, 6.0, 1.1]}[kind]
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003],
                                   qerror_medians=[1.0, 2.0, 3.0],
                                   qerror_p95=[2.0, 5.0, 9.0],
                                   qerror_p99=[3.0, 8.0, 12.0]))
    return graphs, labels


@pytest.fixture(scope="module")
def fitted():
    graphs, labels = tiny_corpus()
    config = AutoCEConfig(hidden_dim=16, embedding_dim=8,
                          dml=DMLConfig(epochs=8, batch_size=6, seed=0),
                          use_incremental=False, seed=0)
    advisor = AutoCE(config)
    advisor.fit_graphs(graphs, labels)
    return advisor, graphs, labels


class TestRoundTrip:
    def test_recommendations_identical(self, fitted, tmp_path):
        advisor, graphs, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path)
        for graph in graphs:
            for w in (1.0, 0.7, 0.3):
                a = advisor.recommend(graph, w)
                b = reloaded.recommend(graph, w)
                assert a.model == b.model
                np.testing.assert_allclose(a.score_vector, b.score_vector)

    def test_embeddings_identical(self, fitted, tmp_path):
        advisor, graphs, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path)
        np.testing.assert_allclose(reloaded.embed(graphs[0]),
                                   advisor.embed(graphs[0]), rtol=1e-12)
        np.testing.assert_allclose(reloaded.rcs.embeddings,
                                   advisor.rcs.embeddings, rtol=1e-12)

    def test_config_round_trips(self, fitted, tmp_path):
        advisor, _, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path)
        assert reloaded.config == advisor.config

    def test_labels_keep_raw_statistics(self, fitted, tmp_path):
        advisor, _, labels = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path)
        original, restored = labels[0], reloaded._labels[0]
        assert isinstance(restored, DatasetLabel)
        np.testing.assert_allclose(restored.qerror_means, original.qerror_means)
        np.testing.assert_allclose(restored.qerror_p99, original.qerror_p99)
        # D-error and percentile re-normalization still work post-reload.
        assert restored.d_error("A", 1.0) == original.d_error("A", 1.0)
        assert (restored.with_accuracy_metric("p95").best_model(1.0)
                == original.with_accuracy_metric("p95").best_model(1.0))

    def test_drift_detection_survives_reload(self, fitted, tmp_path):
        advisor, graphs, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path)
        far = FeatureGraph("far", np.full((2, graphs[0].vertex_dim), 50.0),
                           np.zeros((2, 2)))
        assert advisor.is_drifted(far) == reloaded.is_drifted(far)

    def test_reloaded_advisor_can_adapt_online(self, fitted, tmp_path):
        advisor, graphs, labels = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        reloaded = load_advisor(path)
        size_before = len(reloaded.rcs)
        reloaded.adapt_online(graphs[0], labels[0], update_epochs=1)
        assert len(reloaded.rcs) == size_before + 1


class TestErrors:
    def test_unfitted_advisor_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_advisor(AutoCE(), str(tmp_path / "nope.npz"))

    def test_version_mismatch_rejected(self, fitted, tmp_path):
        advisor, _, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
        metadata["format_version"] = FORMAT_VERSION + 999
        arrays["metadata"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_advisor(path)

    def test_previous_format_version_still_accepted(self, fitted, tmp_path):
        """v1 saves (pre-IVF, per-label JSON, no quantizer block) must keep
        loading: the version gate is a whitelist, not an equality check."""
        advisor, graphs, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
        metadata["format_version"] = 1
        arrays["metadata"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        reloaded = load_advisor(path)
        a = advisor.recommend(graphs[0], 0.9)
        b = reloaded.recommend(graphs[0], 0.9)
        assert a.model == b.model


class TestLabelPayloads:
    def test_score_label_round_trip(self):
        label = ScoreLabel(MODELS, sa=[1.0, 0.5, 0.0], se=[0.0, 0.5, 1.0])
        restored = _label_from_dict(_label_to_dict(label))
        assert not isinstance(restored, DatasetLabel)
        np.testing.assert_allclose(restored.sa, label.sa)
        np.testing.assert_allclose(restored.se, label.se)

    def test_dataset_label_with_missing_optionals(self):
        label = DatasetLabel(MODELS, [1, 2, 3], [0.1, 0.2, 0.3])
        restored = _label_from_dict(_label_to_dict(label))
        assert isinstance(restored, DatasetLabel)
        assert restored.qerror_p95 is None
        np.testing.assert_allclose(restored.qerror_means, [1, 2, 3])

    def test_reloaded_arrays_are_float64_ndarrays(self):
        label = DatasetLabel(MODELS, [1.5, 2.0, 3.0], [0.1, 0.2, 0.3],
                             qerror_medians=[1.0, 2.0, 3.0],
                             qerror_p95=[2.0, 5.0, 9.0],
                             qerror_p99=[3.0, 8.0, 12.0],
                             fit_times=[0.5, 0.6, 0.7])
        restored = _label_from_dict(_label_to_dict(label))
        for name in ("qerror_means", "latency_means", "qerror_medians",
                     "fit_times", "qerror_p95", "qerror_p99", "sa", "se"):
            value = getattr(restored, name)
            assert isinstance(value, np.ndarray), name
            assert value.dtype == np.float64, name

    def test_reloaded_label_behaves_identically(self):
        """Save → load → re-normalize: every derived quantity must match."""
        label = DatasetLabel(MODELS, [1.5, 2.0, 3.0], [0.1, 0.2, 0.3],
                             qerror_medians=[1.0, 2.0, 3.0],
                             qerror_p95=[2.0, 5.0, 9.0],
                             qerror_p99=[3.0, 8.0, 12.0])
        restored = _label_from_dict(_label_to_dict(label))
        for w in (1.0, 0.6, 0.0):
            np.testing.assert_array_equal(restored.score_vector(w),
                                          label.score_vector(w))
            assert restored.best_model(w) == label.best_model(w)
            for model in MODELS:
                assert restored.d_error(model, w) == label.d_error(model, w)
        for metric in ("median", "p95", "p99"):
            a = restored.with_accuracy_metric(metric)
            b = label.with_accuracy_metric(metric)
            np.testing.assert_array_equal(a.sa, b.sa)
            np.testing.assert_array_equal(a.se, b.se)
        # Array-indexed operations (fancy indexing would reject raw Python
        # lists if the load path ever stopped coercing) survive a reload.
        sub = restored.subset(["C", "A"])
        np.testing.assert_array_equal(sub.qerror_means, [3.0, 1.5])
        np.testing.assert_array_equal(restored.label_matrix(),
                                      label.label_matrix())


class TestCrashSafety:
    """Torn and corrupted advisor files (via the fault harness) either load
    fully or raise AdvisorLoadError — never a half-restored advisor."""

    def saved(self, fitted, tmp_path):
        advisor, graphs, _ = fitted
        path = str(tmp_path / "advisor.npz")
        save_advisor(advisor, path)
        return advisor, graphs, path

    def test_missing_file_raises_a_typed_error(self, tmp_path):
        with pytest.raises(AdvisorLoadError, match="cannot load advisor"):
            load_advisor(str(tmp_path / "never-written.npz"))

    def test_typed_error_is_a_value_error(self):
        assert issubclass(AdvisorLoadError, ValueError)

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.7, 0.95])
    def test_torn_write_raises_instead_of_half_loading(self, fitted,
                                                       tmp_path, fraction):
        _, _, path = self.saved(fitted, tmp_path)
        FaultPlan(tear_fraction=fraction).tear_file(path)
        with pytest.raises(AdvisorLoadError):
            load_advisor(path)

    def test_corrupt_bytes_load_fully_or_raise_typed(self, fitted, tmp_path):
        advisor, graphs, path = self.saved(fitted, tmp_path)
        for seed in range(5):
            clean = str(tmp_path / f"clean{seed}.npz")
            save_advisor(advisor, clean)
            FaultPlan(seed=seed, corrupt_bytes=4).corrupt_file(clean)
            try:
                reloaded = load_advisor(clean)
            except AdvisorLoadError:
                continue
            # The flips happened to miss anything load-bearing: the advisor
            # must be *fully* restored, i.e. able to serve every graph.
            for graph in graphs[:3]:
                rec = reloaded.recommend(graph, 0.7)
                assert rec.model in MODELS

    def test_dangling_array_member_raises_typed(self, fitted, tmp_path):
        # A "format-valid" zip missing a required member (e.g. a partial
        # copy) must not produce an advisor with half its weights.
        advisor, _, path = self.saved(fitted, tmp_path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "param_0"}
        np.savez_compressed(path, **arrays)
        with pytest.raises(AdvisorLoadError):
            load_advisor(path)
