"""DML trainer, KNN predictor, incremental learning, online adapting and the
AutoCE facade — exercised on a small synthetic labeled corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.advisor import AutoCE, AutoCEConfig
from repro.core.dml import DMLConfig, DMLTrainer
from repro.core.encoder import GINEncoder
from repro.core.graph import FeatureGraph
from repro.core.incremental import (IncrementalConfig, augment_with_mixup,
                                    collect_feedback, incremental_learning)
from repro.core.online import DriftDetector, OnlineAdapter
from repro.core.predictor import (KNNPredictor, RecommendationCandidateSet)
from repro.testbed.scores import DatasetLabel

MODELS = ("A", "B", "C")


def synthetic_corpus(n=24, dim=12, seed=0):
    """Graphs whose structure determines which model wins.

    Graphs with positive first-feature mean favor model A; negative favor
    B; near-zero favor C — a learnable mapping for the encoder.
    """
    rng = np.random.default_rng(seed)
    graphs, labels = [], []
    for i in range(n):
        kind = i % 3
        shift = {0: 2.0, 1: -2.0, 2: 0.0}[kind]
        tables = int(rng.integers(1, 4))
        vertices = rng.normal(size=(tables, dim)) * 0.3
        vertices[:, 0] += shift
        edges = np.zeros((tables, tables))
        for t in range(1, tables):
            edges[t - 1, t] = 0.5
        graphs.append(FeatureGraph(f"g{i}", vertices, edges))
        qerr = {0: [1.1, 3.0, 6.0], 1: [6.0, 1.1, 3.0], 2: [3.0, 6.0, 1.1]}[kind]
        qerr = list(np.array(qerr) + rng.uniform(0, 0.2, 3))
        labels.append(DatasetLabel(MODELS, qerr, [0.001, 0.002, 0.003]))
    return graphs, labels


@pytest.fixture(scope="module")
def corpus():
    return synthetic_corpus()


@pytest.fixture(scope="module")
def trained(corpus):
    graphs, labels = corpus
    encoder = GINEncoder(vertex_dim=graphs[0].vertex_dim, hidden_dim=24,
                         embedding_dim=8, seed=0)
    trainer = DMLTrainer(encoder, DMLConfig(epochs=30, batch_size=12, seed=0))
    history = trainer.train(graphs, labels)
    return encoder, trainer, history


class TestDMLTrainer:
    def test_loss_decreases(self, trained):
        _, _, history = trained
        assert np.mean(history[-5:]) < np.mean(history[:5])

    def test_embeddings_cluster_by_label(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        emb = encoder.embed(graphs)
        kinds = np.array([i % 3 for i in range(len(graphs))])
        dist = np.sqrt(((emb[:, None] - emb[None, :]) ** 2).sum(-1))
        same = dist[kinds[:, None] == kinds[None, :]].mean()
        diff = dist[kinds[:, None] != kinds[None, :]].mean()
        assert diff > same

    def test_requires_two_graphs(self, corpus):
        graphs, labels = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, 8, 4)
        trainer = DMLTrainer(encoder)
        with pytest.raises(ValueError):
            trainer.train(graphs[:1], labels[:1])

    def test_unknown_loss_rejected(self, corpus):
        graphs, _ = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, 8, 4)
        with pytest.raises(ValueError):
            DMLTrainer(encoder, DMLConfig(loss="nope"))

    def test_basic_loss_trains(self, corpus):
        graphs, labels = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, 16, 8, seed=1)
        trainer = DMLTrainer(encoder, DMLConfig(epochs=5, loss="basic"))
        history = trainer.train(graphs, labels)
        assert len(history) == 5


class TestKNNPredictor:
    def test_k1_returns_nearest_label(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        emb = encoder.embed(graphs)
        rcs = RecommendationCandidateSet(emb[1:], labels[1:])
        rec = KNNPredictor(k=1).recommend(emb[0], rcs, 1.0)
        nearest = int(np.argmin(np.sqrt(((emb[1:] - emb[0]) ** 2).sum(1))))
        assert rec.model == labels[1 + nearest].best_model(1.0)

    def test_k_capped_at_rcs_size(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        emb = encoder.embed(graphs)
        rcs = RecommendationCandidateSet(emb[:2], labels[:2])
        rec = KNNPredictor(k=10).recommend(emb[0], rcs, 1.0)
        assert len(rec.neighbor_indices) == 2

    def test_empty_rcs_rejected(self):
        with pytest.raises(ValueError):
            KNNPredictor().recommend(np.zeros(4),
                                     RecommendationCandidateSet(), 1.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KNNPredictor(k=0)

    def test_ranking_sorted(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        emb = encoder.embed(graphs)
        rcs = RecommendationCandidateSet(emb, labels)
        rec = KNNPredictor(k=2).recommend(emb[0], rcs, 0.8)
        scores = [s for _, s in rec.ranking()]
        assert scores == sorted(scores, reverse=True)
        assert rec.ranking()[0][0] == rec.model

    def test_rcs_add_and_replace(self, corpus):
        graphs, labels = corpus
        rcs = RecommendationCandidateSet()
        rcs.add(np.zeros(4), labels[0])
        rcs.add(np.ones(4), labels[1])
        assert len(rcs) == 2
        rcs.replace_embeddings(np.full((2, 4), 2.0))
        np.testing.assert_allclose(rcs.embeddings, 2.0)
        with pytest.raises(ValueError):
            rcs.replace_embeddings(np.zeros((3, 4)))


class TestIncremental:
    def test_feedback_partitions_corpus(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        config = IncrementalConfig(folds=4, d_error_threshold=0.05)
        feedback, reference = collect_feedback(encoder, graphs, labels, config)
        assert sorted(feedback + reference) == list(range(len(graphs)))

    def test_mixup_synthesizes_per_feedback(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        config = IncrementalConfig(seed=1)
        result = augment_with_mixup(encoder, graphs, labels,
                                    feedback=[0, 1], reference=[2, 3, 4],
                                    config=config)
        assert result.num_synthesized == 2
        for g, lab in zip(result.new_graphs, result.new_labels):
            assert g.vertex_dim == graphs[0].vertex_dim
            assert np.all(lab.sa >= 0) and np.all(lab.sa <= 1)

    def test_no_reference_no_synthesis(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        result = augment_with_mixup(encoder, graphs, labels,
                                    feedback=[0], reference=[],
                                    config=IncrementalConfig())
        assert result.num_synthesized == 0

    def test_full_loop_runs(self, corpus):
        graphs, labels = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, 16, 8, seed=2)
        trainer = DMLTrainer(encoder, DMLConfig(epochs=5))
        trainer.train(graphs, labels)
        result = incremental_learning(
            trainer, graphs, labels,
            IncrementalConfig(folds=4, epochs=2, d_error_threshold=0.0))
        # With threshold 0, every imperfect recommendation gives feedback.
        assert result.num_synthesized == len(result.feedback_indices) or \
            not result.reference_indices

    def test_no_augment_variant(self, corpus):
        graphs, labels = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, 16, 8, seed=3)
        trainer = DMLTrainer(encoder, DMLConfig(epochs=3))
        trainer.train(graphs, labels)
        result = incremental_learning(trainer, graphs, labels,
                                      IncrementalConfig(folds=4, epochs=1),
                                      augment=False)
        assert result.num_synthesized == 0


class TestOnline:
    def test_threshold_is_percentile(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        emb = encoder.embed(graphs)
        rcs = RecommendationCandidateSet(emb, labels)
        detector = DriftDetector(percentile=90.0)
        threshold = detector.threshold(rcs)
        distances = rcs.nearest_neighbor_distances()
        assert threshold == pytest.approx(np.percentile(distances, 90.0))

    def test_far_point_is_drifted(self, trained, corpus):
        encoder, _, _ = trained
        graphs, labels = corpus
        emb = encoder.embed(graphs)
        rcs = RecommendationCandidateSet(emb, labels)
        detector = DriftDetector()
        far = emb.mean(axis=0) + 1000.0
        assert detector.is_drifted(far, rcs)
        assert not detector.is_drifted(emb[0], rcs)

    def test_adapt_grows_rcs(self, corpus):
        graphs, labels = corpus
        encoder = GINEncoder(graphs[0].vertex_dim, 16, 8, seed=4)
        trainer = DMLTrainer(encoder, DMLConfig(epochs=3))
        train_g, train_l = list(graphs[:-1]), list(labels[:-1])
        trainer.train(train_g, train_l)
        rcs = RecommendationCandidateSet(encoder.embed(train_g), list(train_l))
        adapter = OnlineAdapter(trainer, update_epochs=1)
        adapter.adapt(graphs[-1], labels[-1], train_g, train_l, rcs)
        assert len(rcs) == len(graphs)


class TestAutoCEFacade:
    def test_fit_recommend_cycle(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(
            hidden_dim=24, embedding_dim=8,
            dml=DMLConfig(epochs=20, batch_size=12), seed=0))
        advisor.fit(graphs, labels)
        rec = advisor.recommend(graphs[0], accuracy_weight=1.0)
        assert rec.model in MODELS
        # The synthetic mapping is learnable: most picks should be optimal.
        hits = sum(advisor.recommend(g, 1.0).model == lab.best_model(1.0)
                   for g, lab in zip(graphs, labels))
        assert hits >= len(graphs) * 0.7

    def test_unfitted_raises(self, corpus):
        advisor = AutoCE()
        with pytest.raises(RuntimeError):
            advisor.recommend(corpus[0][0], 1.0)

    def test_mismatched_lengths_rejected(self, corpus):
        graphs, labels = corpus
        with pytest.raises(ValueError):
            AutoCE().fit(graphs, labels[:-1])

    def test_drift_api(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=5),
                                      use_incremental=False))
        advisor.fit(graphs, labels)
        assert isinstance(advisor.is_drifted(graphs[0]), bool)

    def test_adapt_online_updates(self, corpus):
        graphs, labels = corpus
        advisor = AutoCE(AutoCEConfig(dml=DMLConfig(epochs=5),
                                      use_incremental=False))
        advisor.fit(graphs[:-1], labels[:-1])
        before = len(advisor.rcs)
        advisor.adapt_online(graphs[-1], labels[-1], update_epochs=1)
        assert len(advisor.rcs) == before + 1
