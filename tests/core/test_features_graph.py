"""Feature engineering and feature graphs (Sec. V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (FEATURES_PER_COLUMN, column_features,
                                 join_correlation_matrix,
                                 table_feature_vector, vertex_dimension)
from repro.core.graph import (FeatureGraph, batch_graphs, build_feature_graph)


class TestColumnFeatures:
    def test_length(self):
        feats = column_features(np.arange(100))
        assert feats.shape == (FEATURES_PER_COLUMN,)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            values = rng.integers(0, 1000, 500)
            feats = column_features(values)
            assert np.all(np.abs(feats) <= 3.0)

    def test_skew_sign(self):
        right_skewed = np.concatenate([np.zeros(900), np.full(100, 100)])
        assert column_features(right_skewed)[0] > 0.3

    def test_constant_column(self):
        feats = column_features(np.full(50, 7))
        assert feats[0] == 0.0 and feats[1] == 0.0

    def test_empty_column(self):
        np.testing.assert_array_equal(column_features(np.array([])),
                                      np.zeros(FEATURES_PER_COLUMN))


class TestVertexFeatures:
    def test_dimension_formula(self, small_dataset):
        m = 4
        table = small_dataset[small_dataset.table_names[0]]
        vec = table_feature_vector(table, m)
        assert vec.shape == (vertex_dimension(m),)
        assert vertex_dimension(m) == (FEATURES_PER_COLUMN + m) * m + 2

    def test_paper_example3_dimension(self):
        # Example 3: m = 4, k = 6 → (6+4)·4+2 = 42.
        assert vertex_dimension(4) == 42

    def test_padding_zeroes_missing_columns(self, small_dataset):
        # Table with 2 data columns, m = 5: the trailing blocks must be 0.
        name = min(small_dataset.table_names,
                   key=lambda n: len(small_dataset[n].data_columns()))
        table = small_dataset[name]
        n_cols = len(table.data_columns())
        m = 5
        vec = table_feature_vector(table, m)
        block = FEATURES_PER_COLUMN + m
        used = 2 + n_cols * block
        np.testing.assert_array_equal(vec[used:], 0.0)

    def test_self_correlation_is_one(self, small_dataset):
        table = small_dataset[small_dataset.table_names[0]]
        m = 5
        vec = table_feature_vector(table, m)
        block = FEATURES_PER_COLUMN + m
        # Column 0's correlation entry with itself is at offset 2 + k.
        assert vec[2 + FEATURES_PER_COLUMN] == pytest.approx(1.0)


class TestJoinMatrix:
    def test_placement_and_symmetry(self, small_dataset):
        edges = join_correlation_matrix(small_dataset)
        names = sorted(small_dataset.table_names)
        index = {n: i for i, n in enumerate(names)}
        for fk in small_dataset.foreign_keys:
            value = edges[index[fk.parent], index[fk.child]]
            assert value == pytest.approx(small_dataset.join_correlation(fk))
        # Non-edges are zero.
        assert np.count_nonzero(edges) == len(small_dataset.foreign_keys)

    def test_single_table_empty(self, single_dataset):
        edges = join_correlation_matrix(single_dataset)
        assert edges.shape == (1, 1)
        assert edges[0, 0] == 0.0


class TestFeatureGraph:
    def test_build(self, small_dataset):
        graph = build_feature_graph(small_dataset)
        assert graph.num_tables == small_dataset.num_tables
        assert graph.edges.shape == (graph.num_tables, graph.num_tables)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FeatureGraph("x", np.zeros((2, 3)), np.zeros((3, 3)))

    def test_padding(self, small_dataset):
        graph = build_feature_graph(small_dataset)
        padded = graph.padded(5)
        assert padded.num_tables == 5
        np.testing.assert_array_equal(padded.vertices[graph.num_tables:], 0.0)
        np.testing.assert_array_equal(
            padded.vertices[:graph.num_tables], graph.vertices)

    def test_padding_down_rejected(self, small_dataset):
        graph = build_feature_graph(small_dataset)
        with pytest.raises(ValueError):
            graph.padded(1)

    def test_mixup_convexity(self, small_dataset, single_dataset):
        g1 = build_feature_graph(small_dataset)
        g2 = build_feature_graph(single_dataset)
        mixed = g1.mix_with(g2, 0.25)
        n = max(g1.num_tables, g2.num_tables)
        expected = 0.25 * g1.padded(n).vertices + 0.75 * g2.padded(n).vertices
        np.testing.assert_allclose(mixed.vertices, expected)

    def test_mixup_lambda_one_recovers_self(self, small_dataset):
        g = build_feature_graph(small_dataset)
        mixed = g.mix_with(g, 1.0)
        np.testing.assert_allclose(mixed.vertices, g.vertices)

    def test_flat_length(self, small_dataset):
        g = build_feature_graph(small_dataset)
        assert g.flat().shape == (g.num_tables * g.vertex_dim
                                  + g.num_tables ** 2,)

    def test_batching(self, small_dataset, single_dataset):
        g1 = build_feature_graph(small_dataset)
        g2 = build_feature_graph(single_dataset)
        vertices, edges, mask = batch_graphs([g1, g2])
        n = max(g1.num_tables, g2.num_tables)
        assert vertices.shape == (2, n, g1.vertex_dim)
        assert edges.shape == (2, n, n)
        assert mask[0].sum() == g1.num_tables
        assert mask[1].sum() == g2.num_tables

    def test_batch_empty_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])
