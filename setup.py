"""Thin setup.py enabling legacy editable installs (no `wheel` available offline)."""
from setuptools import setup

setup()
